/**
 * @file
 * Serving throughput/latency benchmark: a tiny square-activation MLP
 * behind the InferenceServer, swept over scheduler concurrency
 * (max_inflight). Reports requests/second and p50/p95 client-observed
 * latency per concurrency level, with `--json` metrics for the CI perf
 * trajectory. Two sessions with distinct keys keep the executor pool's
 * key rebinding on the measured path.
 *
 * `--churn` switches to the key-cache churn workload instead: S
 * registered sessions (64 in smoke mode, 10,000 otherwise) with a
 * Zipf-distributed request mix, run twice — once all-resident
 * (key_cache_mb = 0) and once under a cap sized to the hot working set —
 * reporting RSS, hit rate, eviction count, and p50/p95 for each pass
 * (CI uploads this as BENCH_serve_churn.json).
 *
 * `--shards N` switches to the multi-process serving topology instead:
 * N forked shard processes (each an InferenceServer behind a net::
 * ServeEndpoint on a pre-forked listener) behind an in-parent
 * net::Router, driven by concurrent NetClients over TCP loopback.
 * Reports end-to-end p50/p95 and aggregate throughput, plus the
 * router's forwarding counters (CI uploads BENCH_serve_shards.json).
 * Children are forked before any CKKS state (and thus any thread)
 * exists; listeners are created pre-fork so both sides know the ports.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "src/core/telemetry.h"
#include "src/net/net.h"
#include "src/serve/serve.h"

using namespace orion;

namespace {

double
percentile(std::vector<double> v, double p)
{
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/** Process resident set size in MiB (/proc/self/status; 0 off Linux). */
double
rss_mb()
{
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0.0;
    char line[256];
    double mb = 0.0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        long kb = 0;
        if (std::sscanf(line, "VmRSS: %ld", &kb) == 1) {
            mb = static_cast<double>(kb) / 1024.0;
            break;
        }
    }
    std::fclose(f);
    return mb;
}

/**
 * The full serving substrate, built identically in the parent and every
 * forked shard child (deterministic toy params + micro MLP compile, so a
 * client bundle from one process is compatible with any other's server).
 */
struct Stack {
    ckks::CkksParams params;
    ckks::Context ctx;
    nn::Network net;
    core::CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    explicit Stack(int batch = 1)
        : params(ckks::CkksParams::toy()), ctx(params),
          net(nn::make_micro_mlp())
    {
        core::CompileOptions opt;
        opt.slots = ctx.slot_count();
        opt.l_eff = 4;
        opt.cost = core::CostModel::for_params(
            ctx.degree(), params.digit_size, params.digit_size, 3);
        opt.calibration_samples = 3;
        opt.batch = batch;
        cn = core::compile(net, opt);
        prepared = std::make_shared<const core::PreparedProgram>(cn, ctx);
    }
};

volatile std::sig_atomic_t g_child_stop = 0;

void
child_on_term(int)
{
    g_child_stop = 1;
}

/** A forked shard: one endpoint on the inherited listener until SIGTERM. */
[[noreturn]] void
run_shard_child(net::Listener listener)
{
    std::signal(SIGTERM, child_on_term);
    Stack st;
    serve::ServeOptions sopts;
    sopts.max_inflight = 2;
    sopts.queue_capacity = 64;
    serve::InferenceServer server(st.cn, st.ctx, sopts, st.prepared);
    net::ServeEndpoint endpoint(server, std::move(listener));
    while (!g_child_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    endpoint.stop();
    // _exit: the parent registered the atexit JSON writer before forking;
    // only the parent may run it.
    _exit(0);
}

/** The multi-process sharded topology (--shards N). */
void
run_shards(int nshards)
{
    ORION_CHECK(nshards >= 1, "--shards needs at least 1");
    const int n_clients = bench::smoke() ? 2 : 4;
    const int per_client = bench::smoke() ? 3 : 25;

    // Listeners first (no threads exist yet), so ports are known to both
    // sides of the fork and nobody has to parse a child's stdout.
    std::vector<net::Listener> listeners;
    std::vector<int> ports;
    for (int i = 0; i < nshards; ++i) {
        listeners.emplace_back(0);
        ports.push_back(listeners.back().port());
    }

    std::vector<pid_t> pids;
    for (int i = 0; i < nshards; ++i) {
        const pid_t pid = fork();
        ORION_CHECK(pid >= 0, "fork failed");
        if (pid == 0) {
            for (int j = 0; j < nshards; ++j) {
                if (j != i) listeners[static_cast<std::size_t>(j)].close();
            }
            run_shard_child(
                std::move(listeners[static_cast<std::size_t>(i)]));
        }
        pids.push_back(pid);
    }
    for (net::Listener& l : listeners) l.close();

    Stack st;
    std::vector<std::string> backends;
    for (const int p : ports) {
        backends.push_back("127.0.0.1:" + std::to_string(p));
    }
    net::Router router(backends, net::Listener(0));
    // Children pay their compile before their endpoint listens; give the
    // slowest one ample time on a loaded CI box.
    ORION_CHECK(router.wait_for_shards(static_cast<std::size_t>(nshards),
                                       120.0),
                "not all shard processes came up");
    std::printf("\nshards: %d backend processes up, router on port %d, "
                "%d clients x %d requests\n",
                nshards, router.port(), n_clients, per_client);

    net::ClientOptions copts;
    copts.max_attempts = 20;
    copts.backoff_base_s = 0.02;
    copts.backoff_cap_s = 0.5;

    std::mutex agg_mu;
    std::vector<double> latency_ms;
    u64 total_retries = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < n_clients; ++c) {
        threads.emplace_back([&, c] {
            serve::ServeClient crypto(st.cn, st.ctx,
                                      /*seed=*/9000 + static_cast<u64>(c));
            net::NetClient client(crypto, "127.0.0.1", router.port(),
                                  /*session_token=*/0x9000 +
                                      static_cast<u64>(c),
                                  copts);
            std::vector<double> local;
            for (int r = 0; r < per_client; ++r) {
                const std::vector<double> input = bench::random_vector(
                    64, 1.0, 600 + static_cast<u64>(c * 1000 + r));
                const auto rt0 = std::chrono::steady_clock::now();
                const std::vector<double> out = client.infer(input);
                ORION_CHECK(!out.empty(), "empty inference result");
                local.push_back(1e3 *
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - rt0)
                                    .count());
            }
            client.close();
            std::lock_guard<std::mutex> lk(agg_mu);
            latency_ms.insert(latency_ms.end(), local.begin(),
                              local.end());
            total_retries += client.retry_stats().retries;
        });
    }
    for (std::thread& t : threads) t.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    const int requests = n_clients * per_client;
    const double p50 = percentile(latency_ms, 0.50);
    const double p95 = percentile(latency_ms, 0.95);
    const double rps = static_cast<double>(requests) / wall;
    const auto snap = router.metrics().snapshot();
    std::printf("%-8s %10s %10s %10s %12s %10s %10s\n", "shards",
                "requests", "p50 ms", "p95 ms", "req/s", "retries",
                "failover");
    std::printf("%-8d %10d %10.1f %10.1f %12.2f %10llu %10.0f\n", nshards,
                requests, p50, p95, rps,
                static_cast<unsigned long long>(total_retries),
                snap.at("router.shard.failover"));
    ORION_CHECK(snap.at("router.requests.replied") >=
                    static_cast<double>(requests),
                "router replied to fewer requests than were sent");

    bench::json_metric("shards/backends", static_cast<double>(nshards));
    bench::json_metric("shards/requests", static_cast<double>(requests));
    bench::json_metric("shards/throughput_rps", rps);
    bench::json_metric("shards/p50_ms", p50);
    bench::json_metric("shards/p95_ms", p95);
    bench::json_metric("shards/client_retries",
                       static_cast<double>(total_retries));
    bench::json_metric("shards/router_forwarded",
                       snap.at("router.requests.forwarded"));
    bench::json_metric("shards/router_failover",
                       snap.at("router.shard.failover"));
    bench::json_metric("shards/router_forward_p95_ms",
                       1e3 * snap.at("router.forward.seconds.p95"));

    router.stop();
    for (const pid_t pid : pids) kill(pid, SIGTERM);
    for (const pid_t pid : pids) {
        int status = 0;
        (void)waitpid(pid, &status, 0);
        ORION_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                    "shard process exited abnormally");
    }
}

/**
 * The key-cache churn workload: many sessions, few distinct bundles
 * (registration reuses kBundles key bundles round-robin — the cache
 * treats every session independently, so this measures session scaling
 * without paying S keygens), Zipf-skewed request mix.
 */
void
run_churn(const core::CompiledNetwork& cn, const ckks::Context& ctx,
          const std::shared_ptr<const core::PreparedProgram>& prepared)
{
    const int sessions = bench::smoke() ? 64 : 10000;
    const int requests = bench::smoke() ? 16 : 200;
    constexpr int kBundles = 4;

    std::vector<std::unique_ptr<serve::ServeClient>> clients;
    std::vector<ckks::serial::Bytes> bundles;
    for (int i = 0; i < kBundles; ++i) {
        clients.push_back(std::make_unique<serve::ServeClient>(
            cn, ctx, /*seed=*/5000 + static_cast<u64>(i)));
        bundles.push_back(clients.back()->key_bundle());
    }
    const serve::KeyBundle decoded =
        serve::decode_key_bundle(bundles[0], ctx);
    const std::size_t per_bundle =
        decoded.relin.byte_size() + decoded.galois.byte_size();

    constexpr int kHotSet = 8;
    const int cap_mb =
        static_cast<int>((static_cast<std::size_t>(kHotSet) * per_bundle) >>
                         20) +
        2;

    std::printf("\nchurn: %d sessions (%d distinct bundles, %.1f KiB "
                "expanded each), %d Zipf requests, capped pass at %d MiB\n",
                sessions, kBundles,
                static_cast<double>(per_bundle) / 1024.0, requests, cap_mb);
    std::printf("%-10s %10s %10s %10s %10s %10s %12s %10s\n", "pass",
                "reg/s", "p50 ms", "p95 ms", "hit rate", "evictions",
                "resident MB", "RSS MB");

    struct Pass {
        const char* name;
        int cache_mb;
        int sessions;  ///< the all-resident baseline stays small on purpose:
                       ///< S expanded bundles resident at once is the very
                       ///< RSS blow-up the capped store exists to prevent
    };
    double allres_p95 = 0.0;
    double capped_p95 = 0.0;
    for (const Pass pass : {Pass{"allres", 0, std::min(sessions, 64)},
                            Pass{"capped", cap_mb, sessions}}) {
        serve::ServeOptions sopts;
        sopts.max_inflight = 2;
        sopts.queue_capacity = 256;
        sopts.key_cache_mb = pass.cache_mb;
        serve::InferenceServer server(cn, ctx, sopts, prepared);

        const auto reg_t0 = std::chrono::steady_clock::now();
        std::vector<u64> ids;
        ids.reserve(static_cast<std::size_t>(pass.sessions));
        for (int s = 0; s < pass.sessions; ++s) {
            ids.push_back(server.register_session(
                bundles[static_cast<std::size_t>(s % kBundles)]));
        }
        const double reg_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - reg_t0)
                                 .count();

        // Zipf(1.1) over this pass's session ranks: most requests hit a
        // handful of hot sessions. The capped pass sizes its cache to
        // that hot set, so a well-behaved LRU serves mostly hits despite
        // S >> cache.
        std::vector<double> cum;
        cum.reserve(ids.size());
        double total = 0.0;
        for (std::size_t r = 1; r <= ids.size(); ++r) {
            total += 1.0 / std::pow(static_cast<double>(r), 1.1);
            cum.push_back(total);
        }
        std::mt19937_64 rng(99);
        std::uniform_real_distribution<double> uni(0.0, total);
        std::vector<std::future<serve::ServeReply>> futs;
        std::vector<std::chrono::steady_clock::time_point> at;
        for (int r = 0; r < requests; ++r) {
            const auto rank = static_cast<std::size_t>(
                std::lower_bound(cum.begin(), cum.end(), uni(rng)) -
                cum.begin());
            serve::ServeClient& c = *clients[rank % kBundles];
            c.set_session_id(ids[rank]);
            const std::vector<double> input = bench::random_vector(
                64, 1.0, 7000 + static_cast<u64>(r));
            at.push_back(std::chrono::steady_clock::now());
            futs.push_back(server.submit(c.make_request(input)));
        }
        std::vector<double> latency_ms;
        for (std::size_t i = 0; i < futs.size(); ++i) {
            (void)futs[i].get();
            latency_ms.push_back(
                1e3 * std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - at[i])
                          .count());
        }

        const serve::ServerStats stats = server.stats();
        ORION_CHECK(stats.completed == static_cast<u64>(requests) &&
                        stats.failed == 0,
                    "churn requests failed");
        const std::size_t cap_bytes =
            static_cast<std::size_t>(pass.cache_mb) << 20;
        ORION_CHECK(cap_bytes == 0 || stats.key_resident_bytes <= cap_bytes,
                    "resident key bytes " << stats.key_resident_bytes
                                          << " exceed the " << pass.cache_mb
                                          << " MiB cap");

        const double p50 = percentile(latency_ms, 0.50);
        const double p95 = percentile(latency_ms, 0.95);
        const u64 lookups =
            std::max<u64>(stats.key_cache_hits + stats.key_cache_misses, 1);
        const double hit_rate =
            static_cast<double>(stats.key_cache_hits) /
            static_cast<double>(lookups);
        const double rss = rss_mb();
        std::printf("%-10s %10.1f %10.1f %10.1f %10.3f %10llu %12.1f "
                    "%10.1f\n",
                    pass.name, static_cast<double>(sessions) / reg_s, p50,
                    p95, hit_rate,
                    static_cast<unsigned long long>(
                        stats.key_cache_evictions),
                    static_cast<double>(stats.key_resident_bytes) /
                        (1024.0 * 1024.0),
                    rss);

        const std::string prefix = std::string(pass.name) + "/";
        bench::json_metric(prefix + "register_per_s",
                           static_cast<double>(sessions) / reg_s);
        bench::json_metric(prefix + "p50_ms", p50);
        bench::json_metric(prefix + "p95_ms", p95);
        bench::json_metric(prefix + "hit_rate", hit_rate);
        bench::json_metric(prefix + "evictions",
                           static_cast<double>(stats.key_cache_evictions));
        bench::json_metric(prefix + "resident_mb",
                           static_cast<double>(stats.key_resident_bytes) /
                               (1024.0 * 1024.0));
        bench::json_metric(prefix + "disk_mb",
                           static_cast<double>(stats.key_disk_bytes) /
                               (1024.0 * 1024.0));
        bench::json_metric(prefix + "rss_mb", rss);
        // The server-side latency view from its own registry (one schema
        // with metrics_text(); client-side percentiles above stay the
        // headline numbers since they include queueing).
        const auto snap = server.metrics().snapshot();
        bench::json_metric(prefix + "server_exec_p95_ms",
                           1e3 * snap.at("serve.execute.seconds.p95"));
        if (pass.cache_mb == 0) {
            allres_p95 = p95;
        } else {
            capped_p95 = p95;
        }

        // Unregister/re-register churn tail: drop every other session and
        // prove the survivors (including the hot set) still serve.
        for (std::size_t i = 1; i < ids.size(); i += 2) {
            ORION_CHECK(server.unregister_session(ids[i]),
                        "churn unregister failed");
        }
        clients[0]->set_session_id(ids[0]);
        (void)server
            .submit(clients[0]->make_request(bench::random_vector(64, 1.0,
                                                                  8001)))
            .get();
    }
    bench::json_metric("churn/sessions", static_cast<double>(sessions));
    bench::json_metric("churn/bundle_kib",
                       static_cast<double>(per_bundle) / 1024.0);
    if (allres_p95 > 0.0) {
        // The acceptance ratio: with the hot set fitting in cache, the
        // capped pass should stay within ~2x of all-resident.
        bench::json_metric("churn/p95_vs_allres", capped_p95 / allres_p95);
        std::printf("churn: capped p95 is %.2fx the all-resident p95\n",
                    capped_p95 / allres_p95);
    }
}

/**
 * The slot-batched inference workload (--batch B): the same micro MLP
 * compiled twice — once single-sample (the exact historical program) and
 * once with B samples interleaved across batch lanes — and driven through
 * the server both ways with identical inputs. One batched request runs
 * the encrypted program ONCE for all B images, so per-image latency must
 * drop by roughly the batch factor; the run asserts >= 8x at B >= 16 and
 * cross-checks every batched image against its single-sample result.
 */
void
run_batch(int target_batch)
{
    ORION_CHECK(target_batch >= 2, "--batch needs at least 2");
    const Stack batched(target_batch);
    const int B = batched.cn.batch;
    std::printf("\nbatch: requested %d, compiled %d (capacity %d, lane "
                "stride %llu, limited by %s)\n",
                target_batch, B, batched.cn.batch_capacity,
                static_cast<unsigned long long>(batched.cn.batch_stride),
                batched.cn.batch_limit_layer.c_str());
    ORION_CHECK(B >= 2, "program has no batch capacity");

    const Stack single;
    const int rounds = bench::smoke() ? 2 : 5;

    serve::ServeOptions sopts;
    sopts.max_inflight = 1;  // one core, one worker: pure work comparison
    sopts.queue_capacity = 256;

    serve::InferenceServer s1(single.cn, single.ctx, sopts,
                              single.prepared);
    serve::ServeClient c1(single.cn, single.ctx, /*seed=*/3001);
    c1.set_session_id(s1.register_session(c1.key_bundle()));

    serve::InferenceServer sB(batched.cn, batched.ctx, sopts,
                              batched.prepared);
    serve::ServeClient cB(batched.cn, batched.ctx, /*seed=*/3002);
    cB.set_session_id(sB.register_session(cB.key_bundle()));

    std::vector<std::vector<double>> inputs;
    for (int i = 0; i < B; ++i) {
        inputs.push_back(
            bench::random_vector(64, 1.0, 300 + static_cast<u64>(i)));
    }

    // Warm both paths (first request pays key binding + NTT warmup).
    std::vector<std::vector<double>> single_outs;
    {
        const auto reply =
            s1.submit(c1.make_request(inputs[0])).get();
        single_outs.push_back(c1.decrypt_response(reply.response));
        (void)sB.submit(cB.make_request_batch(inputs)).get();
    }

    // Single-sample pass: B sequential requests per round.
    std::vector<double> b1_image_ms;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < B; ++i) {
            const auto reply =
                s1.submit(c1.make_request(inputs[static_cast<std::size_t>(
                              i)]))
                    .get();
            if (r == 0 && i > 0) {
                single_outs.push_back(c1.decrypt_response(reply.response));
            }
        }
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        b1_image_ms.push_back(1e3 * wall / static_cast<double>(B));
    }

    // Batched pass: one request per round carries all B images.
    std::vector<double> bN_image_ms;
    std::vector<std::vector<double>> batched_outs;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto reply = sB.submit(cB.make_request_batch(inputs)).get();
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        bN_image_ms.push_back(1e3 * wall / static_cast<double>(B));
        if (r == 0) {
            batched_outs = cB.decrypt_response_batch(
                reply.response, static_cast<int>(inputs.size()));
        }
    }

    // Every batched lane must agree with its single-sample run (distinct
    // keys, so agreement is up to CKKS approximation noise).
    ORION_CHECK(batched_outs.size() == single_outs.size(),
                "batched output count mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < batched_outs.size(); ++i) {
        ORION_CHECK(batched_outs[i].size() == single_outs[i].size(),
                    "batched output size mismatch");
        for (std::size_t j = 0; j < batched_outs[i].size(); ++j) {
            worst = std::max(worst, std::abs(batched_outs[i][j] -
                                             single_outs[i][j]));
        }
    }
    ORION_CHECK(worst < 5e-2, "batched outputs diverge from single-sample "
                "outputs (max abs diff "
                                  << worst << ")");

    const serve::ServerStats bstats = sB.stats();
    ORION_CHECK(bstats.images ==
                    static_cast<u64>(rounds + 1) * static_cast<u64>(B),
                "server image ledger mismatch");

    const double b1_ms = percentile(b1_image_ms, 0.50);
    const double bN_ms = percentile(bN_image_ms, 0.50);
    const double speedup = b1_ms / bN_ms;
    const double images_per_s = 1e3 / bN_ms;
    std::printf("%-10s %14s %14s %10s %12s\n", "batch", "per-image ms",
                "images/s", "speedup", "max |diff|");
    std::printf("%-10d %14.2f %14.2f %10s %12.2e\n", 1, b1_ms,
                1e3 / b1_ms, "1.0x", 0.0);
    std::printf("%-10d %14.2f %14.2f %9.1fx %12.2e\n", B, bN_ms,
                images_per_s, speedup, worst);

    bench::json_metric("batch/b1_per_image_ms", b1_ms);
    bench::json_metric("batch/b" + std::to_string(B) + "_per_image_ms",
                       bN_ms);
    bench::json_metric("batch/compiled_batch", static_cast<double>(B));
    bench::json_metric("batch/speedup_x", speedup);
    bench::json_metric("batch/images_per_s", images_per_s);
    bench::json_metric("batch/max_abs_diff", worst);

    // The acceptance criterion: amortizing one program execution over 16
    // lanes must buy at least 8x per-image throughput.
    if (B >= 16) {
        ORION_CHECK(speedup >= 8.0,
                    "batched speedup " << speedup << "x is below the 8x "
                    "floor at batch " << B);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bool churn = false;
    int nshards = 0;
    int batch = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--churn") == 0) churn = true;
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            nshards = std::atoi(argv[i + 1]);
        }
        if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
            batch = std::atoi(argv[i + 1]);
        }
    }
    bench::print_header(
        nshards > 0
            ? "bench_serve: multi-process sharded serving (--shards)"
            : (batch > 0
                   ? "bench_serve: slot-batched inference (--batch)"
                   : (churn
                          ? "bench_serve: session key-cache churn (--churn)"
                          : "bench_serve: encrypted-inference throughput vs "
                            "concurrency")));

    if (batch > 0) {
        run_batch(batch);
        return 0;
    }

    if (nshards > 0) {
        // Fork-before-threads: run_shards builds the CKKS stack only
        // after the shard children exist.
        run_shards(nshards);
        return 0;
    }

    // The same micro model the serving tests validate (src/nn/models.h).
    const Stack st;
    const ckks::Context& ctx = st.ctx;
    const core::CompiledNetwork& cn = st.cn;
    const auto& prepared = st.prepared;

    if (churn) {
        run_churn(cn, ctx, prepared);
        return 0;
    }

    // Two sessions: half the requests go through each key bundle.
    serve::ServeClient alice(cn, ctx, /*seed=*/1001);
    serve::ServeClient bob(cn, ctx, /*seed=*/2002);

    const std::vector<int> concurrency =
        bench::smoke() ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8};
    const int per_worker = bench::reps(4);

    std::printf("\n%-12s %10s %10s %10s %12s %12s\n", "max_inflight",
                "requests", "p50 ms", "p95 ms", "req/s",
                "queue p95 ms");
    for (const int c : concurrency) {
        serve::ServeOptions sopts;
        sopts.max_inflight = c;
        sopts.queue_capacity = 256;
        serve::InferenceServer server(cn, ctx, sopts, prepared);
        alice.set_session_id(server.register_session(alice.key_bundle()));
        bob.set_session_id(server.register_session(bob.key_bundle()));

        const int requests = c * per_worker;
        std::vector<std::future<serve::ServeReply>> futures;
        std::vector<std::chrono::steady_clock::time_point> submitted;
        futures.reserve(static_cast<std::size_t>(requests));
        submitted.reserve(static_cast<std::size_t>(requests));

        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < requests; ++r) {
            serve::ServeClient& client = (r % 2 == 0) ? alice : bob;
            const std::vector<double> input = bench::random_vector(
                64, 1.0, 400 + static_cast<u64>(r));
            submitted.push_back(std::chrono::steady_clock::now());
            futures.push_back(server.submit(client.make_request(input)));
        }
        std::vector<double> latency_ms, queue_ms;
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const serve::ServeReply reply = futures[i].get();
            latency_ms.push_back(
                1e3 *
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - submitted[i])
                    .count());
            queue_ms.push_back(1e3 * reply.stats.queue_wait_s);
        }
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const serve::ServerStats stats = server.stats();
        ORION_CHECK(stats.completed == static_cast<u64>(requests) &&
                        stats.failed == 0,
                    "bench requests failed");

        const double p50 = percentile(latency_ms, 0.50);
        const double p95 = percentile(latency_ms, 0.95);
        const double rps = static_cast<double>(requests) / wall;
        std::printf("%-12d %10d %10.1f %10.1f %12.2f %12.1f\n", c, requests,
                    p50, p95, rps, percentile(queue_ms, 0.95));

        const std::string prefix = "c" + std::to_string(c) + "/";
        bench::json_metric(prefix + "throughput_rps", rps);
        bench::json_metric(prefix + "p50_ms", p50);
        bench::json_metric(prefix + "p95_ms", p95);
        bench::json_metric(prefix + "queue_p95_ms",
                           percentile(queue_ms, 0.95));
        bench::json_metric(prefix + "peak_inflight",
                           static_cast<double>(stats.peak_inflight));
        bench::json_metric(
            prefix + "mean_exec_ms",
            1e3 * stats.total_execute_s /
                static_cast<double>(std::max<u64>(stats.completed, 1)));
        // Server-registry view of the same pass: the execute-latency
        // histogram and the ledger, as metrics_text() would expose them.
        const auto snap = server.metrics().snapshot();
        bench::json_metric(prefix + "server_exec_p50_ms",
                           1e3 * snap.at("serve.execute.seconds.p50"));
        bench::json_metric(prefix + "server_exec_p95_ms",
                           1e3 * snap.at("serve.execute.seconds.p95"));
        bench::json_metric(prefix + "server_completed",
                           snap.at("serve.completed"));
    }
    std::printf("\n(two sessions with distinct key bundles; kernel threads "
                "per request = 1,\n scaling comes from request-level "
                "parallelism across the worker pool)\n");
    return 0;
}
