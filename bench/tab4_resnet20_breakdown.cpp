/**
 * @file
 * Table 4: sources of Orion's ResNet-20 improvement over Fhelipe.
 * Columns: rotation count, bootstrap count, convolution time, end-to-end
 * latency.
 *
 * Paper: 1428 -> 836 rotations (1.71x), 58 -> 37 bootstraps (1.58x),
 * conv time 334.5 -> 29.89 s (11.2x, from hoisting + precomputed
 * encodings), latency 1468 -> 618 s (2.38x). Here the baseline is
 * reconstructed from the same ingredients the paper names: diagonal-method
 * packing without BSGS, lazy bootstrap placement, un-hoisted rotations
 * with on-the-fly encoding. Conv-time ratios are *measured* on the CKKS
 * substrate; end-to-end latency uses the paper-scale cost model.
 */

#include "bench/bench_util.h"
#include "src/baselines/unhoisted.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Table 4: ResNet-20 breakdown, Orion vs Fhelipe-style baseline");

    const nn::Network net = nn::make_resnet_cifar(20, nn::Act::kRelu);
    const u64 slots = u64(1) << 15;

    // Orion compilation.
    core::CompileOptions orion_opt;
    orion_opt.slots = slots;
    orion_opt.l_eff = 10;
    orion_opt.structural_only = true;
    orion_opt.calibration_samples = 1;
    const core::CompiledNetwork orion_cn = core::compile(net, orion_opt);

    // Baseline compilation: no BSGS (per-diagonal rotations) and the lazy
    // bootstrap-when-forced placement Section 5.1 warns about.
    core::CompileOptions base_opt = orion_opt;
    base_opt.use_bsgs = false;
    base_opt.lazy_placement = true;
    const core::CompiledNetwork base_cn = core::compile(net, base_opt);

    std::printf("%-22s %14s %14s %10s\n", "metric", "baseline", "Orion",
                "ratio");
    std::printf("%-22s %14llu %14llu %9.2fx   (paper 1.71x)\n",
                "# rotations",
                static_cast<unsigned long long>(base_cn.total_rotations),
                static_cast<unsigned long long>(orion_cn.total_rotations),
                static_cast<double>(base_cn.total_rotations) /
                    static_cast<double>(orion_cn.total_rotations));
    std::printf("%-22s %14llu %14llu %9.2fx   (see note)\n",
                "# bootstraps",
                static_cast<unsigned long long>(base_cn.num_bootstraps),
                static_cast<unsigned long long>(orion_cn.num_bootstraps),
                static_cast<double>(std::max<u64>(base_cn.num_bootstraps, 1)) /
                    static_cast<double>(
                        std::max<u64>(orion_cn.num_bootstraps, 1)));
    std::printf("%-22s %14.1f %14.1f %9.2fx   (paper 2.38x)\n",
                "modeled latency (s)", base_cn.modeled_latency,
                orion_cn.modeled_latency,
                base_cn.modeled_latency / orion_cn.modeled_latency);

    // Measured convolution time: a representative ResNet-20 conv (16->16,
    // 3x3 on 32x32) at functional parameters, hoisted + precomputed vs
    // un-hoisted + on-the-fly encoding.
    ckks::CkksParams params = ckks::CkksParams::network(u64(1) << 13, 12);
    ckks::Context ctx(params);
    ckks::Encoder enc(ctx);
    ckks::KeyGenerator keygen(ctx, 7);
    const ckks::PublicKey pk = keygen.make_public_key();
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Evaluator eval(ctx, enc);

    const u64 dim = ctx.slot_count();
    lin::Conv2dSpec spec;
    spec.in_channels = 4;
    spec.out_channels = 4;
    spec.kernel_h = spec.kernel_w = 3;
    spec.pad = 1;
    const lin::TensorLayout in(4, 16, 16, 1);
    const lin::TensorLayout out = lin::conv_output_layout(spec, in);
    const std::vector<double> w =
        bench::random_vector(spec.weight_count(), 1.0, 9);
    const lin::BlockedMatrix bm =
        lin::build_conv_matrix(spec, w, in, out, dim);
    const lin::DiagonalMatrix* block = bm.block(0, 0);
    const lin::BsgsPlan plan = lin::BsgsPlan::build(*block);
    ckks::GaloisKeys galois = keygen.make_galois_keys(plan.required_steps());
    eval.set_galois_keys(&galois);

    const int level = 10;
    const double w_scale = static_cast<double>(ctx.q(level).value());
    const ckks::Ciphertext ct = encryptor.encrypt(enc.encode(
        in.pack(bench::random_vector(4 * 16 * 16, 1.0, 10), dim), level,
        ctx.scale()));

    const lin::HeDiagonalMatrix he(ctx, enc, *block, plan, level, w_scale);
    const double t_orion = bench::time_median(
        bench::reps(3), [&] { (void)he.apply(eval, ct); });
    const double t_base = bench::time_median(bench::reps(3), [&] {
        (void)baselines::apply_unhoisted(eval, enc, *block, plan, level,
                                         w_scale, ct);
    });
    std::printf("%-22s %14.1f %14.1f %9.2fx   (paper 11.2x)\n",
                "conv time (ms, meas.)", t_base * 1e3, t_orion * 1e3,
                t_base / t_orion);
    std::printf(
        "\nNotes: baseline = diagonal-method packing + lazy placement + "
        "un-hoisted rotations +\non-the-fly encoding (the ingredients Table "
        "4 attributes to Fhelipe). The bootstrap row\nshows Section 5.1's "
        "counter-intuitive effect directly: the lazy baseline places\n"
        "*fewer* bootstraps yet costs ~2x more end to end, because its ops "
        "run at expensive\nhigh levels - Orion minimizes latency, not "
        "bootstrap count. The measured conv row\nisolates hoisting + "
        "precomputed encodings only; the paper's 11.2x also includes\n"
        "Fhelipe's packing overheads.\n");
    return 0;
}
