/**
 * @file
 * RNS kernel microbenchmark: the three limb-level hot paths that dominate
 * end-to-end latency (PAPER.md Section 3) — NTT forward/inverse butterflies,
 * the key-switch inner product, and BSGS rotation accumulation. This is the
 * binary behind the repo's kernel perf trajectory: run with
 * `--json BENCH_kernels.json` before and after a kernel change and compare
 * the per-op metrics.
 */

#include "bench/bench_util.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header("Kernel microbenchmark: NTT / key switch / rotation");

    // ---- raw NTT on one limb ----------------------------------------
    const u64 n = bench::smoke() ? (u64(1) << 11) : (u64(1) << 13);
    const ckks::Modulus q(ckks::generate_ntt_primes(50, 1, n)[0]);
    const ckks::NttTables tables(n, q);

    std::mt19937_64 rng(7);
    std::uniform_int_distribution<u64> dist(0, q.value() - 1);
    std::vector<u64> poly(n);
    for (u64& x : poly) x = dist(rng);
    const std::vector<u64> original = poly;

    const int ntt_iters = bench::smoke() ? 4 : 200;
    const double t_fwd = bench::time_median(bench::reps(7), [&] {
        for (int i = 0; i < ntt_iters; ++i) tables.forward(poly.data());
    }) / ntt_iters;
    const double t_inv = bench::time_median(bench::reps(7), [&] {
        for (int i = 0; i < ntt_iters; ++i) tables.inverse(poly.data());
    }) / ntt_iters;
    // Self-check: the timed transforms are inverses in pairs, so after an
    // equal number of forward and inverse passes the data must be intact.
    ORION_CHECK(poly == original, "NTT roundtrip corrupted the polynomial");

    std::printf("NTT (N = %llu, 50-bit prime, single limb)\n",
                static_cast<unsigned long long>(n));
    std::printf("  forward: %10.4f ms\n", t_fwd * 1e3);
    std::printf("  inverse: %10.4f ms\n", t_inv * 1e3);
    bench::json_metric("ntt_n", static_cast<double>(n));
    bench::json_metric("ntt_forward_ms", t_fwd * 1e3);
    bench::json_metric("ntt_inverse_ms", t_inv * 1e3);

    // ---- key-switch decompose + inner product -----------------------
    ckks::CkksParams params = ckks::CkksParams::toy();
    if (!bench::smoke()) {
        params.poly_degree = u64(1) << 13;
        params.log_scale = 35;
        params.first_prime_bits = 45;
        params.num_scale_primes = 12;
        params.special_prime_bits = 46;
        params.digit_size = 3;
    }
    ckks::Context ctx(params);
    ckks::Encoder enc(ctx);
    ckks::KeyGenerator keygen(ctx, 7);
    const ckks::KswitchKey relin = keygen.make_relin_key();
    ckks::GaloisKeys galois = keygen.make_galois_keys(std::vector<int>{1, 2});
    const ckks::PublicKey pk = keygen.make_public_key();
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Evaluator eval(ctx, enc);
    eval.set_galois_keys(&galois);
    const ckks::KeySwitcher switcher(ctx);

    const int level = ctx.max_level();
    const ckks::Plaintext pt = enc.encode(
        bench::random_vector(ctx.slot_count(), 1.0, 11), level, ctx.scale());
    const ckks::Ciphertext ct = encryptor.encrypt(pt);

    const std::vector<ckks::RnsPoly> digits = switcher.decompose(ct.c1);
    ckks::RnsPoly acc0(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    ckks::RnsPoly acc1(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    const int ks_iters = bench::smoke() ? 2 : 20;
    const double t_ip = bench::time_median(bench::reps(5), [&] {
        for (int i = 0; i < ks_iters; ++i) {
            switcher.inner_product(digits, relin, &acc0, &acc1);
        }
    }) / ks_iters;
    const double t_dec = bench::time_median(bench::reps(5), [&] {
        (void)switcher.decompose(ct.c1);
    });

    std::printf("\nkey switch (N = %llu, %d digits, level %d)\n",
                static_cast<unsigned long long>(ctx.degree()),
                ctx.num_digits(level), level);
    std::printf("  decompose:     %10.4f ms\n", t_dec * 1e3);
    std::printf("  inner product: %10.4f ms\n", t_ip * 1e3);
    bench::json_metric("ks_degree", static_cast<double>(ctx.degree()));
    bench::json_metric("ks_decompose_ms", t_dec * 1e3);
    bench::json_metric("ks_inner_product_ms", t_ip * 1e3);

    // ---- rotation accumulation (the BSGS giant-step primitive) ------
    const int acc_iters = bench::smoke() ? 1 : 5;
    const double t_acc = bench::time_median(bench::reps(5), [&] {
        for (int i = 0; i < acc_iters; ++i) {
            auto acc = eval.make_accumulator(level, ct.scale);
            eval.accumulate_rotation(acc, ct, 1);
            eval.accumulate_rotation(acc, ct, 2);
            eval.accumulate_rotation(acc, ct, 0);
            (void)eval.finalize_accumulator(acc);
        }
    }) / acc_iters;
    std::printf("\nrotation accumulate (2 rotations + step 0 + finalize)\n");
    std::printf("  accumulate: %10.4f ms\n", t_acc * 1e3);
    bench::json_metric("rotation_accumulate_ms", t_acc * 1e3);

    return 0;
}
