/**
 * @file
 * RNS kernel microbenchmark: the three limb-level hot paths that dominate
 * end-to-end latency (PAPER.md Section 3) — NTT forward/inverse butterflies,
 * the key-switch inner product, and BSGS rotation accumulation. This is the
 * binary behind the repo's kernel perf trajectory: run with
 * `--json BENCH_kernels.json` before and after a kernel change and compare
 * the per-op metrics.
 */

#include "bench/bench_util.h"

#include "src/ckks/kernels.h"

using namespace orion;

namespace {

namespace k = ckks::kernels;

/**
 * Per-ISA size sweep over the raw kernels: NTT forward/inverse on a
 * single limb and the key-switch inner product, each at ring sizes up to
 * N = 2^16 and (for the inner product) several digit counts. One row and
 * one JSON metric per (kernel, ISA, size) cell — this is what
 * check_regression.py diffs across commits, with the scalar rows pinning
 * the no-vectorization-regression bar and the vector rows the speedup.
 */
void
sweep_isas()
{
    std::vector<k::Isa> isas;
    for (k::Isa isa : {k::Isa::kScalar, k::Isa::kAvx2, k::Isa::kAvx512}) {
        if (k::isa_supported(isa)) isas.push_back(isa);
    }
    const std::vector<u64> sizes = bench::smoke()
                                       ? std::vector<u64>{u64(1) << 10}
                                       : std::vector<u64>{u64(1) << 12,
                                                          u64(1) << 14,
                                                          u64(1) << 16};
    const std::vector<u64> digit_counts =
        bench::smoke() ? std::vector<u64>{2} : std::vector<u64>{2, 4, 8};

    std::printf("\nper-ISA kernel sweep (single limb, 61-bit prime)\n");
    std::printf("%-8s %8s %14s %14s\n", "isa", "n", "ntt fwd ms",
                "ntt inv ms");
    for (u64 n : sizes) {
        const ckks::Modulus q(ckks::generate_ntt_primes(61, 1, n)[0]);
        const ckks::NttTables tables(n, q);
        const k::NttView view = tables.view();
        std::mt19937_64 rng(13 + n);
        std::uniform_int_distribution<u64> dist(0, q.value() - 1);
        std::vector<u64> poly(n);
        for (u64& x : poly) x = dist(rng);

        // Iteration count scaled so each cell times ~2^21 butterflies.
        const int iters =
            bench::smoke() ? 2 : static_cast<int>((u64(1) << 21) / n);
        for (k::Isa isa : isas) {
            const k::KernelTable& t = k::table(isa);
            const double t_fwd = bench::time_median(bench::reps(5), [&] {
                for (int i = 0; i < iters; ++i) {
                    t.ntt_forward(view, poly.data());
                }
            }) / iters;
            const double t_inv = bench::time_median(bench::reps(5), [&] {
                for (int i = 0; i < iters; ++i) {
                    t.ntt_inverse(view, poly.data());
                }
            }) / iters;
            std::printf("%-8s %8llu %14.4f %14.4f\n", k::isa_name(isa),
                        static_cast<unsigned long long>(n), t_fwd * 1e3,
                        t_inv * 1e3);
            const std::string tag =
                std::string(k::isa_name(isa)) + "_n" + std::to_string(n);
            bench::json_metric("sweep_ntt_fwd_" + tag + "_ms", t_fwd * 1e3);
            bench::json_metric("sweep_ntt_inv_" + tag + "_ms", t_inv * 1e3);
        }
    }

    std::printf("\n%-8s %8s %8s %16s\n", "isa", "n", "digits",
                "ks inner ms");
    for (u64 n : sizes) {
        const ckks::Modulus q(ckks::generate_ntt_primes(61, 1, n)[0]);
        std::mt19937_64 rng(17 + n);
        std::uniform_int_distribution<u64> dist(0, q.value() - 1);
        for (u64 nd : digit_counts) {
            std::vector<std::vector<u64>> xs_s(nd), bs_s(nd), as_s(nd);
            std::vector<const u64*> xs(nd), bs(nd), as(nd);
            for (u64 d = 0; d < nd; ++d) {
                xs_s[d].resize(n);
                bs_s[d].resize(n);
                as_s[d].resize(n);
                for (u64 j = 0; j < n; ++j) {
                    xs_s[d][j] = dist(rng);
                    bs_s[d][j] = dist(rng);
                    as_s[d][j] = dist(rng);
                }
                xs[d] = xs_s[d].data();
                bs[d] = bs_s[d].data();
                as[d] = as_s[d].data();
            }
            std::vector<u64> o0(n, 0), o1(n, 0);
            const int iters =
                bench::smoke() ? 2
                               : static_cast<int>((u64(1) << 22) / (n * nd));
            for (k::Isa isa : isas) {
                const k::KernelTable& t = k::table(isa);
                const double t_ip = bench::time_median(bench::reps(5), [&] {
                    for (int i = 0; i < iters; ++i) {
                        t.ks_inner_product(o0.data(), o1.data(), xs.data(),
                                           bs.data(), as.data(), nd, n, q);
                    }
                }) / iters;
                std::printf("%-8s %8llu %8llu %16.4f\n", k::isa_name(isa),
                            static_cast<unsigned long long>(n),
                            static_cast<unsigned long long>(nd),
                            t_ip * 1e3);
                const std::string tag = std::string(k::isa_name(isa)) +
                                        "_n" + std::to_string(n) + "_d" +
                                        std::to_string(nd);
                bench::json_metric("sweep_ks_ip_" + tag + "_ms", t_ip * 1e3);
            }
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header("Kernel microbenchmark: NTT / key switch / rotation");
    std::printf("[simd dispatch: %s]\n", k::isa_name(k::active_isa()));
    bench::json_metric("simd_isa", static_cast<double>(k::active_isa()));

    // ---- raw NTT on one limb ----------------------------------------
    const u64 n = bench::smoke() ? (u64(1) << 11) : (u64(1) << 13);
    const ckks::Modulus q(ckks::generate_ntt_primes(50, 1, n)[0]);
    const ckks::NttTables tables(n, q);

    std::mt19937_64 rng(7);
    std::uniform_int_distribution<u64> dist(0, q.value() - 1);
    std::vector<u64> poly(n);
    for (u64& x : poly) x = dist(rng);
    const std::vector<u64> original = poly;

    const int ntt_iters = bench::smoke() ? 4 : 200;
    const double t_fwd = bench::time_median(bench::reps(7), [&] {
        for (int i = 0; i < ntt_iters; ++i) tables.forward(poly.data());
    }) / ntt_iters;
    const double t_inv = bench::time_median(bench::reps(7), [&] {
        for (int i = 0; i < ntt_iters; ++i) tables.inverse(poly.data());
    }) / ntt_iters;
    // Self-check: the timed transforms are inverses in pairs, so after an
    // equal number of forward and inverse passes the data must be intact.
    ORION_CHECK(poly == original, "NTT roundtrip corrupted the polynomial");

    std::printf("NTT (N = %llu, 50-bit prime, single limb)\n",
                static_cast<unsigned long long>(n));
    std::printf("  forward: %10.4f ms\n", t_fwd * 1e3);
    std::printf("  inverse: %10.4f ms\n", t_inv * 1e3);
    bench::json_metric("ntt_n", static_cast<double>(n));
    bench::json_metric("ntt_forward_ms", t_fwd * 1e3);
    bench::json_metric("ntt_inverse_ms", t_inv * 1e3);

    // ---- key-switch decompose + inner product -----------------------
    ckks::CkksParams params = ckks::CkksParams::toy();
    if (!bench::smoke()) {
        params.poly_degree = u64(1) << 13;
        params.log_scale = 35;
        params.first_prime_bits = 45;
        params.num_scale_primes = 12;
        params.special_prime_bits = 46;
        params.digit_size = 3;
    }
    ckks::Context ctx(params);
    ckks::Encoder enc(ctx);
    ckks::KeyGenerator keygen(ctx, 7);
    const ckks::KswitchKey relin = keygen.make_relin_key();
    ckks::GaloisKeys galois = keygen.make_galois_keys(std::vector<int>{1, 2});
    const ckks::PublicKey pk = keygen.make_public_key();
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Evaluator eval(ctx, enc);
    eval.set_galois_keys(&galois);
    const ckks::KeySwitcher switcher(ctx);

    const int level = ctx.max_level();
    const ckks::Plaintext pt = enc.encode(
        bench::random_vector(ctx.slot_count(), 1.0, 11), level, ctx.scale());
    const ckks::Ciphertext ct = encryptor.encrypt(pt);

    const std::vector<ckks::RnsPoly> digits = switcher.decompose(ct.c1);
    ckks::RnsPoly acc0(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    ckks::RnsPoly acc1(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    const int ks_iters = bench::smoke() ? 2 : 20;
    const double t_ip = bench::time_median(bench::reps(5), [&] {
        for (int i = 0; i < ks_iters; ++i) {
            switcher.inner_product(digits, relin, &acc0, &acc1);
        }
    }) / ks_iters;
    const double t_dec = bench::time_median(bench::reps(5), [&] {
        (void)switcher.decompose(ct.c1);
    });

    std::printf("\nkey switch (N = %llu, %d digits, level %d)\n",
                static_cast<unsigned long long>(ctx.degree()),
                ctx.num_digits(level), level);
    std::printf("  decompose:     %10.4f ms\n", t_dec * 1e3);
    std::printf("  inner product: %10.4f ms\n", t_ip * 1e3);
    bench::json_metric("ks_degree", static_cast<double>(ctx.degree()));
    bench::json_metric("ks_decompose_ms", t_dec * 1e3);
    bench::json_metric("ks_inner_product_ms", t_ip * 1e3);

    // ---- rotation accumulation (the BSGS giant-step primitive) ------
    const int acc_iters = bench::smoke() ? 1 : 5;
    const double t_acc = bench::time_median(bench::reps(5), [&] {
        for (int i = 0; i < acc_iters; ++i) {
            auto acc = eval.make_accumulator(level, ct.scale);
            eval.accumulate_rotation(acc, ct, 1);
            eval.accumulate_rotation(acc, ct, 2);
            eval.accumulate_rotation(acc, ct, 0);
            (void)eval.finalize_accumulator(acc);
        }
    }) / acc_iters;
    std::printf("\nrotation accumulate (2 rotations + step 0 + finalize)\n");
    std::printf("  accumulate: %10.4f ms\n", t_acc * 1e3);
    bench::json_metric("rotation_accumulate_ms", t_acc * 1e3);

    // Arena effectiveness over the timed section: every RnsPoly buffer
    // after warmup should have come from the pool, not the heap.
    const ckks::OpCounters& c = ctx.counters();
    std::printf("\narena: %llu poly acquisitions, %llu pool hits (%.1f%%)\n",
                static_cast<unsigned long long>(c.poly_alloc.value()),
                static_cast<unsigned long long>(c.poly_arena_hit.value()),
                100.0 * static_cast<double>(c.poly_arena_hit.value()) /
                    static_cast<double>(
                        std::max<u64>(c.poly_alloc.value(), 1)));
    bench::json_metric("poly_alloc",
                       static_cast<double>(c.poly_alloc.value()));
    bench::json_metric("poly_arena_hit",
                       static_cast<double>(c.poly_arena_hit.value()));

    sweep_isas();

    return 0;
}
