/**
 * @file
 * The core/thread_pool contract: task completion, exception propagation
 * through both submit() and parallel_for(), the nested-submit deadlock
 * guard, and the determinism guarantee the whole runtime rests on -
 * multithreaded NTT and BSGS results are bit-identical to num_threads = 1.
 */

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/config.h"
#include "src/core/thread_pool.h"
#include "src/linalg/bsgs.h"
#include "tests/test_util.h"

namespace orion {
namespace {

using core::ScopedNumThreads;
using core::ThreadPool;

TEST(ThreadPool, RunsEveryIteration)
{
    ThreadPool pool(4);
    constexpr i64 kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(0, kCount, [&](i64 i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitDeliversResults)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 32; ++i) {
        futs.push_back(pool.submit([i] { return i * i; }));
    }
    for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, SerialPoolSpawnsNoThreads)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    pool.parallel_for(0, 4, [&](i64) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [](i64 i) {
                              if (i == 37) throw Error("boom 37");
                          }),
        Error);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto fut = pool.submit([]() -> int { throw Error("task failed"); });
    EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPool, AbandonsRemainingWorkAfterFailure)
{
    // Best effort: iterations claimed after the failure is recorded are
    // skipped, so a failing region does not run to the bitter end.
    ThreadPool pool(4);
    std::atomic<i64> executed{0};
    try {
        pool.parallel_for(0, 100000, [&](i64 i) {
            if (i == 0) throw Error("early failure");
            executed.fetch_add(1);
        });
        FAIL() << "expected Error";
    } catch (const Error&) {
    }
    EXPECT_LT(executed.load(), 100000);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallel_for(0, 8, [&](i64) {
        // Workers must not re-enqueue and block on their own queue.
        pool.parallel_for(0, 4, [&](i64) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    auto outer = pool.submit([&] {
        // Waiting on a nested future would deadlock a queue-only design;
        // the guard runs nested submissions inline instead.
        return pool.submit([] { return 41; }).get() + 1;
    });
    EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, NestedGlobalParallelForFromWorker)
{
    const ScopedNumThreads scoped(4);
    std::atomic<int> total{0};
    core::parallel_for(0, 6, [&](i64) {
        core::parallel_for(0, 5, [&](i64) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, ScopedPoolOverrideLeavesGlobalPoolAlone)
{
    using core::ScopedPoolOverride;
    const int global_before = ThreadPool::global_threads();
    std::atomic<int> total{0};
    std::set<std::thread::id> seen;
    std::mutex seen_mu;
    {
        const ScopedPoolOverride scoped(4);
        core::parallel_for(0, 64, [&](i64) {
            total.fetch_add(1);
            std::lock_guard<std::mutex> lk(seen_mu);
            seen.insert(std::this_thread::get_id());
        });
        // Overrides nest: the inner override wins, then restores.
        {
            const ScopedPoolOverride inner(2);
            core::parallel_for(0, 8, [&](i64) { total.fetch_add(1); });
        }
        core::parallel_for(0, 8, [&](i64) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 64 + 8 + 8);
    EXPECT_GE(seen.size(), 1u);
    EXPECT_EQ(ThreadPool::global_threads(), global_before);
}

TEST(ThreadPool, ScopedNumThreadsRestoresPreviousSize)
{
    const int before = ThreadPool::global_threads();
    {
        const ScopedNumThreads scoped(3);
        EXPECT_EQ(ThreadPool::global_threads(), 3);
    }
    EXPECT_EQ(ThreadPool::global_threads(), before);
}

TEST(Config, DefaultIsSerial)
{
    // Unless ORION_NUM_THREADS overrides it, kernels default to the serial
    // seed behavior.
    if (std::getenv("ORION_NUM_THREADS") == nullptr) {
        EXPECT_EQ(core::OrionConfig{}.num_threads, 1);
    }
    core::OrionConfig hw;
    hw.num_threads = 0;
    EXPECT_GE(hw.resolved_num_threads(), 1);
}

// ---------------------------------------------------------------------
// Determinism: threaded kernels must be bit-identical to num_threads = 1.
// ---------------------------------------------------------------------

bool
polys_bit_identical(const ckks::RnsPoly& a, const ckks::RnsPoly& b)
{
    if (a.num_limbs() != b.num_limbs() || a.is_ntt() != b.is_ntt() ||
        a.level() != b.level()) {
        return false;
    }
    const std::size_t bytes = sizeof(u64) * a.degree();
    for (int i = 0; i < a.num_limbs(); ++i) {
        if (std::memcmp(a.limb(i), b.limb(i), bytes) != 0) return false;
    }
    return true;
}

TEST(ThreadPoolDeterminism, NttRoundTripBitIdenticalAcrossThreadCounts)
{
    test::CkksEnv& env = test::CkksEnv::shared();
    const std::vector<double> v =
        test::random_vector(env.ctx.slot_count(), 1.0, 11);

    auto roundtrip = [&](int threads) {
        const ScopedNumThreads scoped(threads);
        ckks::Plaintext pt =
            env.encoder.encode(v, env.ctx.max_level(), env.ctx.scale());
        pt.poly.to_coeff();
        pt.poly.to_ntt();
        return pt;
    };
    const ckks::Plaintext serial = roundtrip(1);
    for (int threads : {2, 4, 8}) {
        const ckks::Plaintext threaded = roundtrip(threads);
        EXPECT_TRUE(polys_bit_identical(serial.poly, threaded.poly))
            << "NTT round trip diverged at num_threads = " << threads;
    }
}

TEST(ThreadPoolDeterminism, BsgsMatvecBitIdenticalAcrossThreadCounts)
{
    test::CkksEnv& env = test::CkksEnv::shared();
    const u64 dim = env.ctx.slot_count();

    // A banded matrix whose plan exercises baby steps, giant steps, and
    // the deferred mod-down accumulation.
    lin::DiagonalMatrix m(dim);
    std::mt19937_64 rng(23);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    for (u64 k : {u64(0), u64(1), u64(2), u64(3), u64(8), u64(9)}) {
        for (u64 r = 0; r < dim; ++r) m.set(r, (r + k) % dim, dist(rng));
    }
    const lin::BsgsPlan plan = lin::BsgsPlan::build(m, 8);
    ckks::GaloisKeys keys =
        env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);

    const int level = 3;
    const double w_scale = static_cast<double>(env.ctx.q(level).value());
    const ckks::Ciphertext ct = env.encryptor.encrypt(env.encoder.encode(
        test::random_vector(dim, 1.0, 29), level, env.ctx.scale()));

    auto matvec = [&](int threads) {
        const ScopedNumThreads scoped(threads);
        const lin::HeDiagonalMatrix he(env.ctx, env.encoder, m, plan, level,
                                       w_scale);
        return he.apply(eval, ct);
    };
    const ckks::Ciphertext serial = matvec(1);
    for (int threads : {2, 4}) {
        const ckks::Ciphertext threaded = matvec(threads);
        EXPECT_TRUE(polys_bit_identical(serial.c0, threaded.c0))
            << "BSGS c0 diverged at num_threads = " << threads;
        EXPECT_TRUE(polys_bit_identical(serial.c1, threaded.c1))
            << "BSGS c1 diverged at num_threads = " << threads;
        EXPECT_EQ(serial.scale, threaded.scale);
    }
}

TEST(ThreadPoolDeterminism, HoistedRotationBitIdenticalAcrossThreadCounts)
{
    test::CkksEnv& env = test::CkksEnv::shared();
    const std::vector<double> v =
        test::random_vector(env.ctx.slot_count(), 1.0, 31);
    const ckks::Ciphertext ct = env.encryptor.encrypt(
        env.encoder.encode(v, env.ctx.max_level(), env.ctx.scale()));

    auto rotate = [&](int threads) {
        const ScopedNumThreads scoped(threads);
        const ckks::Evaluator::Hoisted h = env.eval.hoist(ct);
        return env.eval.rotate_hoisted(h, 5);
    };
    const ckks::Ciphertext serial = rotate(1);
    const ckks::Ciphertext threaded = rotate(4);
    EXPECT_TRUE(polys_bit_identical(serial.c0, threaded.c0));
    EXPECT_TRUE(polys_bit_identical(serial.c1, threaded.c1));
}

}  // namespace
}  // namespace orion
