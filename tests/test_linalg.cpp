#include <gtest/gtest.h>

#include <random>

#include "src/linalg/linalg.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using lin::BlockedMatrix;
using lin::BlockedPlan;
using lin::BsgsPlan;
using lin::DiagonalMatrix;

DiagonalMatrix
random_dense(u64 dim, u64 seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    DiagonalMatrix m(dim);
    for (u64 r = 0; r < dim; ++r) {
        for (u64 c = 0; c < dim; ++c) m.set(r, c, dist(rng));
    }
    return m;
}

std::vector<double>
dense_matvec(const DiagonalMatrix& m, const std::vector<double>& x)
{
    std::vector<double> y(m.dim(), 0.0);
    for (u64 r = 0; r < m.dim(); ++r) {
        for (u64 c = 0; c < m.dim(); ++c) y[r] += m.get(r, c) * x[c];
    }
    return y;
}

TEST(DiagonalMatrix, ApplyMatchesDenseMatvec)
{
    const u64 dim = 32;
    const DiagonalMatrix m = random_dense(dim, 1);
    const std::vector<double> x = random_vector(dim, 1.0, 2);
    EXPECT_LT(max_abs_diff(m.apply(x), dense_matvec(m, x)), 1e-12);
}

TEST(DiagonalMatrix, DiagonalExtraction)
{
    // Figure 2a: the 6x6 example; diag_k[i] = M[i, (i+k) mod 6].
    DiagonalMatrix m(6);
    for (u64 r = 0; r < 6; ++r) {
        for (u64 c = 0; c < 6; ++c) {
            m.set(r, c, static_cast<double>(10 * r + c));
        }
    }
    const std::vector<double>* d2 = m.diagonal(2);
    ASSERT_NE(d2, nullptr);
    for (u64 i = 0; i < 6; ++i) {
        EXPECT_EQ((*d2)[i], static_cast<double>(10 * i + (i + 2) % 6));
    }
}

TEST(DiagonalMatrix, SparseStoresOnlyNonzeroDiagonals)
{
    DiagonalMatrix m(64);
    for (u64 r = 0; r < 64; ++r) {
        m.set(r, (r + 3) % 64, 1.0);
        m.set(r, (r + 10) % 64, 2.0);
    }
    EXPECT_EQ(m.num_diagonals(), 2u);
    EXPECT_EQ(m.diagonal_indices(), (std::vector<u64>{3, 10}));
}

TEST(DiagonalMatrix, PruneDropsZeroedDiagonals)
{
    DiagonalMatrix m(8);
    m.set(0, 1, 5.0);
    m.set(0, 1, 0.0);
    EXPECT_EQ(m.num_diagonals(), 1u);
    m.prune();
    EXPECT_EQ(m.num_diagonals(), 0u);
}

TEST(BsgsPlan, DiagonalMethodWhenN1IsOne)
{
    // n1 = 1 degenerates to the plain diagonal method: one rotation per
    // nonzero diagonal (Figure 2a: n = 6 rotations minus the trivial one).
    const DiagonalMatrix m = random_dense(64, 3);
    const BsgsPlan plan = BsgsPlan::build(m, 1);
    EXPECT_EQ(plan.rotation_count(), 63u);  // rotation by 0 is free
    EXPECT_EQ(plan.pmult_count(), 64u);
}

TEST(BsgsPlan, BsgsReducesRotationsToSqrt)
{
    // Figure 2b: n1 + n2 rotations instead of n.
    const u64 dim = 64;
    const DiagonalMatrix m = random_dense(dim, 4);
    const BsgsPlan plan = BsgsPlan::build(m, 8);
    EXPECT_EQ(plan.n1, 8u);
    // 7 nontrivial baby steps + 7 nontrivial giant steps.
    EXPECT_EQ(plan.rotation_count(), 14u);
    const BsgsPlan best = BsgsPlan::build(m);  // automatic n1
    EXPECT_LE(best.rotation_count(), 14u);
}

TEST(BsgsPlan, PaperExampleFigure2)
{
    // The paper's Figure 2b: n = 6, n1 = 3, n2 = 2 with all diagonals
    // nonzero needs n1 + n2 = 5 rotations minus the two trivial ones = 3;
    // the figure counts rot0 among its "n1 = 3 rotations", so compare
    // nontrivial counts: babies {1, 2} and giants {3} -> 3 rotations.
    const DiagonalMatrix m = random_dense(6, 5);
    const BsgsPlan plan = BsgsPlan::build(m, 3);
    EXPECT_EQ(plan.baby_rotation_count(), 2u);
    EXPECT_EQ(plan.giant_rotation_count(), 1u);
}

TEST(BsgsPlan, SparseDiagonalsShrinkThePlan)
{
    DiagonalMatrix m(1024);
    for (u64 r = 0; r < 1024; ++r) {
        for (u64 k : {0ull, 1ull, 2ull, 32ull, 33ull, 34ull}) {
            m.set(r, (r + k) % 1024, 1.0);
        }
    }
    const BsgsPlan plan = BsgsPlan::build(m, 32);
    EXPECT_EQ(plan.baby_rotation_count(), 2u);   // babies {1, 2}
    EXPECT_EQ(plan.giant_rotation_count(), 1u);  // giants {32}
    EXPECT_EQ(plan.pmult_count(), 6u);
}

TEST(BsgsPlan, RequiredStepsCoverBabiesAndGiants)
{
    DiagonalMatrix m(256);
    for (u64 r = 0; r < 256; ++r) {
        m.set(r, (r + 5) % 256, 1.0);
        m.set(r, (r + 49) % 256, 1.0);
    }
    const BsgsPlan plan = BsgsPlan::build(m, 16);
    const std::vector<int> steps = plan.required_steps();
    // diag 5 -> baby 5 group 0; diag 49 -> baby 1 group 48.
    EXPECT_EQ(steps, (std::vector<int>{1, 5, 48}));
}

TEST(HeMatvec, DenseMatrixMatchesCleartext)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 dim = env.ctx.slot_count();
    DiagonalMatrix m(dim);
    // A banded matrix (20 diagonals) keeps the test fast but nontrivial.
    std::mt19937_64 rng(6);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    for (u64 k = 0; k < 20; ++k) {
        for (u64 r = 0; r < dim; ++r) m.set(r, (r + 7 * k) % dim, dist(rng));
    }
    const BsgsPlan plan = BsgsPlan::build(m);

    ckks::GaloisKeys keys =
        env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);

    const int level = 3;
    const lin::HeDiagonalMatrix he(env.ctx, env.encoder, m, plan, level,
                                   static_cast<double>(
                                       env.ctx.q(level).value()));
    const std::vector<double> x = random_vector(dim, 1.0, 7);
    const ckks::Ciphertext ct = encrypt_vector(env, x, level);
    const ckks::Ciphertext out = he.apply(eval, ct);

    EXPECT_EQ(out.level(), level - 1);                 // exactly one level
    EXPECT_DOUBLE_EQ(out.scale, env.ctx.scale());      // errorless scale
    const std::vector<double> expected = m.apply(x);
    EXPECT_LT(max_abs_diff(decrypt_vector(env, out), expected), 1e-2);
}

TEST(HeMatvec, RotationCountMatchesPlan)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 dim = env.ctx.slot_count();
    DiagonalMatrix m(dim);
    for (u64 k : {1ull, 3ull, 65ull, 130ull}) {
        for (u64 r = 0; r < dim; ++r) m.set(r, (r + k) % dim, 0.01);
    }
    const BsgsPlan plan = BsgsPlan::build(m, 64);
    ckks::GaloisKeys keys =
        env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);
    const lin::HeDiagonalMatrix he(env.ctx, env.encoder, m, plan, 2,
                                   env.ctx.scale());
    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(dim, 1.0, 8), 2);
    env.ctx.counters().reset();
    (void)he.apply(eval, ct);
    EXPECT_EQ(env.ctx.counters().total_rotations(), plan.rotation_count());
    EXPECT_EQ(env.ctx.counters().pmult, plan.pmult_count());
    EXPECT_EQ(env.ctx.counters().rescale, 1u);
}

TEST(BlockedMatrix, CleartextApplyMatchesDense)
{
    const u64 dim = 16;
    BlockedMatrix m(40, 24, dim);  // 3x2 blocks, ragged edges
    std::mt19937_64 rng(9);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::vector<double>> dense(40, std::vector<double>(24, 0.0));
    for (u64 r = 0; r < 40; ++r) {
        for (u64 c = 0; c < 24; ++c) {
            const double v = dist(rng);
            dense[r][c] = v;
            m.add(r, c, v);
        }
    }
    const std::vector<double> x = random_vector(24, 1.0, 10);
    const std::vector<double> y = m.apply(x);
    for (u64 r = 0; r < 40; ++r) {
        double expect = 0;
        for (u64 c = 0; c < 24; ++c) expect += dense[r][c] * x[c];
        EXPECT_NEAR(y[r], expect, 1e-9);
    }
}

TEST(BlockedMatrix, HomomorphicBlockedMatvec)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 dim = env.ctx.slot_count();
    // 2x2 blocks of banded structure.
    BlockedMatrix m(2 * dim, 2 * dim, dim);
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> dist(-0.3, 0.3);
    for (u64 r = 0; r < 2 * dim; ++r) {
        for (u64 k : {0ull, 5ull, 17ull}) {
            m.add(r, (r + k) % (2 * dim), dist(rng));
        }
    }
    const BlockedPlan plan = BlockedPlan::build(m);
    ckks::GaloisKeys keys =
        env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);

    const int level = 2;
    const lin::HeBlockedMatrix he(env.ctx, env.encoder, m, plan, level,
                                  static_cast<double>(
                                      env.ctx.q(level).value()));
    const std::vector<double> x = random_vector(2 * dim, 1.0, 12);
    std::vector<ckks::Ciphertext> in;
    in.push_back(encrypt_vector(
        env, std::vector<double>(x.begin(), x.begin() + dim), level));
    in.push_back(encrypt_vector(
        env, std::vector<double>(x.begin() + dim, x.end()), level));

    env.ctx.counters().reset();
    const std::vector<ckks::Ciphertext> out = he.apply(eval, in);
    EXPECT_EQ(env.ctx.counters().total_rotations(), plan.rotation_count());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0].scale, env.ctx.scale());

    const std::vector<double> expected = m.apply(x);
    const std::vector<double> y0 = decrypt_vector(env, out[0]);
    const std::vector<double> y1 = decrypt_vector(env, out[1]);
    for (u64 i = 0; i < dim; ++i) {
        ASSERT_NEAR(y0[i], expected[i], 1e-2) << i;
        ASSERT_NEAR(y1[i], expected[dim + i], 1e-2) << i;
    }
}

TEST(BlockedPlan, SharesBabyStepsAcrossColumn)
{
    const u64 dim = 64;
    BlockedMatrix m(2 * dim, dim, dim);  // two blocks in one column
    for (u64 r = 0; r < dim; ++r) {
        m.add(r, (r + 3) % dim, 1.0);            // block (0,0): diag 3
        m.add(dim + r, (r + 5) % dim, 1.0);      // block (1,0): diag 5
    }
    const BlockedPlan plan = BlockedPlan::build(m, 8);
    // Babies {3, 5} shared once; no nontrivial giants.
    EXPECT_EQ(plan.rotation_count(), 2u);
}

u64
next_pow2(u64 v)
{
    u64 p = 1;
    while (p < v) p <<= 1;
    return p;
}

TEST(BatchedLayout, PackUnpackRoundTripAdversarialCombos)
{
    // Sweep gap (plain and multiplexed grids), batch count, and lane
    // stride (tight power of two vs padded) against sample spans that do
    // and do not divide the slot count evenly.
    struct Combo {
        int c, h, w, gap, batch;
        u64 extra_stride;  ///< added on top of next_pow2(base span)
    };
    const std::vector<Combo> combos = {
        {1, 8, 8, 1, 1, 0},   {1, 8, 8, 1, 4, 0},  {3, 5, 5, 1, 3, 0},
        {4, 4, 4, 2, 2, 0},   {4, 4, 4, 2, 2, 32}, {5, 3, 3, 2, 4, 0},
        {2, 7, 7, 1, 8, 16},  {16, 2, 2, 4, 2, 0},
    };
    for (const Combo& k : combos) {
        const lin::TensorLayout base(k.c, k.h, k.w, k.gap);
        const u64 stride = next_pow2(base.base_slots()) + k.extra_stride;
        const lin::TensorLayout l = base.with_batch(k.batch, stride);

        std::vector<std::vector<double>> samples;
        for (int b = 0; b < k.batch; ++b) {
            samples.push_back(random_vector(
                l.logical_size(), 1.0, 100 + static_cast<u64>(b)));
        }
        const std::vector<double> slots = l.pack_batch(samples);
        ASSERT_EQ(slots.size(), l.total_slots());

        // Full round trip, plus lane 0 via the single-sample unpack.
        const auto back = l.unpack_batch(slots, k.batch);
        ASSERT_EQ(back.size(), samples.size());
        for (int b = 0; b < k.batch; ++b) {
            EXPECT_EQ(back[static_cast<std::size_t>(b)],
                      samples[static_cast<std::size_t>(b)])
                << "lane " << b << " (c=" << k.c << " gap=" << k.gap
                << " batch=" << k.batch << ")";
        }
        EXPECT_EQ(l.unpack(slots), samples[0]);

        // Under-filled pack: remaining lanes must stay zero.
        if (k.batch > 1) {
            const std::vector<std::vector<double>> some(samples.begin(),
                                                        samples.begin() + 1);
            const std::vector<double> partial = l.pack_batch(some);
            const auto lanes = l.unpack_batch(partial, k.batch);
            EXPECT_EQ(lanes[0], samples[0]);
            for (std::size_t b = 1; b < lanes.size(); ++b) {
                for (const double v : lanes[b]) EXPECT_EQ(v, 0.0);
            }
        }
    }
}

TEST(BatchedLayout, UnpackRejectsShortSlotVector)
{
    const lin::TensorLayout l =
        lin::TensorLayout(2, 4, 4, 1).with_batch(4, 64);
    const std::vector<double> short_slots(l.total_slots() - 1, 0.0);
    expect_throw_contains<Error>([&] { (void)l.unpack(short_slots); },
                                 "slot vector too short");
    expect_throw_contains<Error>(
        [&] { (void)l.unpack_batch(short_slots, 4); },
        "slot vector too short");
}

TEST(BatchedLayout, WithBatchValidatesStride)
{
    const lin::TensorLayout l(2, 4, 4, 1);  // span 32
    expect_throw_contains<Error>([&] { (void)l.with_batch(2, 16); },
                                 "smaller than sample span");
    // batch = 1 normalizes the stride away (bit-identity with legacy).
    const lin::TensorLayout one = l.with_batch(1, 999);
    EXPECT_EQ(one.batch, 1);
    EXPECT_EQ(one.batch_stride, 0u);
    EXPECT_TRUE(one == l);
}

TEST(BatchedToeplitz, StructureInvariantUnderBatching)
{
    // The heart of slot batching: with one power-of-two lane stride and
    // all lanes inside one block, the batched matrices are block-diagonal
    // shifts of the single-sample matrix, so the nonzero diagonal sets
    // (and hence the rotation plan) are IDENTICAL to B = 1.
    const u64 block_dim = 1024;

    lin::Conv2dSpec spec;
    spec.in_channels = 2;
    spec.out_channels = 2;
    spec.kernel_h = 3;
    spec.kernel_w = 3;
    spec.pad = 1;
    const lin::TensorLayout cin(2, 8, 8, 1);  // span 128
    const lin::TensorLayout cout = lin::conv_output_layout(spec, cin);
    const lin::TensorLayout bin = cin.with_batch(4, 128);
    const lin::TensorLayout bout = lin::conv_output_layout(spec, bin);
    EXPECT_EQ(bout.batch, 4);
    EXPECT_EQ(bout.batch_stride, 128u);

    const lin::BlockedStructure s1 =
        lin::build_conv_structure(spec, cin, cout, block_dim);
    const lin::BlockedStructure sB =
        lin::build_conv_structure(spec, bin, bout, block_dim);
    EXPECT_EQ(sB.blocks, s1.blocks);

    const lin::BlockedStructure l1 =
        lin::build_linear_structure(10, cin, block_dim);
    const lin::BlockedStructure lB =
        lin::build_linear_structure(10, bin, block_dim);
    EXPECT_EQ(lB.blocks, l1.blocks);
}

TEST(BatchedToeplitz, BatchedLinearMatchesPerSampleApply)
{
    const int out_features = 12;
    const lin::TensorLayout in(3, 4, 4, 1);  // span 48
    const u64 stride = 64;
    const int batch = 4;
    const lin::TensorLayout bin = in.with_batch(batch, stride);
    const int in_features = static_cast<int>(in.logical_size());
    const std::vector<double> weights = random_vector(
        static_cast<std::size_t>(out_features) * in.logical_size(), 1.0, 7);

    const lin::BlockedMatrix m1 = lin::build_linear_matrix(
        out_features, in_features, weights, in, 1024);
    const lin::BlockedMatrix mB = lin::build_linear_matrix(
        out_features, in_features, weights, bin, 1024);

    std::vector<std::vector<double>> samples;
    for (int b = 0; b < batch; ++b) {
        samples.push_back(
            random_vector(in.logical_size(), 1.0, 50 + static_cast<u64>(b)));
    }
    std::vector<double> packed = bin.pack_batch(samples);
    packed.resize(mB.cols(), 0.0);
    const std::vector<double> y = mB.apply(packed);
    for (int b = 0; b < batch; ++b) {
        std::vector<double> x = in.pack(samples[static_cast<std::size_t>(b)]);
        x.resize(m1.cols(), 0.0);
        const std::vector<double> yb = m1.apply(x);
        for (int r = 0; r < out_features; ++r) {
            EXPECT_NEAR(y[static_cast<u64>(b) * stride +
                          static_cast<u64>(r)],
                        yb[static_cast<std::size_t>(r)], 1e-12)
                << "lane " << b << " row " << r;
        }
    }
}

}  // namespace
}  // namespace orion::test
