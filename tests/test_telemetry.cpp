#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/telemetry.h"

namespace orion::telemetry {
namespace {

TEST(Counter, ConcurrentIncrementsAllLand)
{
    Registry reg;
    Counter& c = reg.counter("test.hits");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.add();
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(c.value(), u64(kThreads) * kPerThread);
}

TEST(Gauge, SetAndConcurrentAdd)
{
    Registry reg;
    Gauge& g = reg.gauge("test.level");
    g.set(41.5);
    EXPECT_DOUBLE_EQ(g.value(), 41.5);
    g.set(2.0);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&g] {
            for (int i = 0; i < kPerThread; ++i) g.add(1.0);
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_DOUBLE_EQ(g.value(), 2.0 + kThreads * kPerThread);
}

TEST(Histogram, CountSumAndPercentileResolution)
{
    Registry reg;
    Histogram& h = reg.histogram("test.latency");
    // 100 observations of 1 ms, 10 of 100 ms: p50 must sit near 1 ms and
    // p95/p99 near 100 ms, within the ~9% log-bucket resolution.
    for (int i = 0; i < 100; ++i) h.observe(1e-3);
    for (int i = 0; i < 10; ++i) h.observe(0.1);
    EXPECT_EQ(h.count(), 110u);
    EXPECT_NEAR(h.sum(), 100 * 1e-3 + 10 * 0.1, 1e-9);
    EXPECT_NEAR(h.percentile(50.0), 1e-3, 0.10 * 1e-3);
    EXPECT_NEAR(h.percentile(95.0), 0.1, 0.10 * 0.1);
    EXPECT_NEAR(h.percentile(99.0), 0.1, 0.10 * 0.1);
    // Percentiles are monotone in p.
    EXPECT_LE(h.percentile(50.0), h.percentile(95.0));
    EXPECT_LE(h.percentile(95.0), h.percentile(99.0));
}

TEST(Histogram, EmptyAndOutOfRangeValues)
{
    Registry reg;
    Histogram& h = reg.histogram("test.edges");
    EXPECT_EQ(h.percentile(50.0), 0.0);  // empty
    h.observe(0.0);                       // below kMinValue -> bucket 0
    h.observe(-1.0);                      // negative clamps to bucket 0 too
    EXPECT_EQ(h.bucket_count(0), 2u);
    h.observe(1e12);  // far above the range: clamps to the last bucket
    EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ConcurrentObservationsAllCounted)
{
    Registry reg;
    Histogram& h = reg.histogram("test.mt");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i) h.observe(1e-3);
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(h.count(), u64(kThreads) * kPerThread);
    EXPECT_NEAR(h.sum(), kThreads * kPerThread * 1e-3, 1e-6);
}

TEST(Registry, SnapshotFlattensAndMergesCollectors)
{
    Registry reg;
    reg.counter("a.ops").add(7);
    reg.gauge("a.depth").set(3.0);
    reg.histogram("a.lat").observe(2e-3);
    // Two collectors emitting the same name: scrape output sums them (the
    // N-live-Contexts case).
    const u64 h1 = reg.add_collector([](std::vector<Sample>& out) {
        out.push_back({"a.collected", 5.0, Sample::Kind::kCounter});
    });
    reg.add_collector([](std::vector<Sample>& out) {
        out.push_back({"a.collected", 2.0, Sample::Kind::kCounter});
    });
    std::map<std::string, double> snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("a.ops"), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("a.depth"), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("a.collected"), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("a.lat.count"), 1.0);
    EXPECT_NEAR(snap.at("a.lat.sum"), 2e-3, 1e-12);
    EXPECT_NEAR(snap.at("a.lat.p50"), 2e-3, 0.10 * 2e-3);
    // Removal works by handle.
    reg.remove_collector(h1);
    snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("a.collected"), 2.0);
}

TEST(Registry, InstrumentReferencesAreStable)
{
    Registry reg;
    Counter& c = reg.counter("stable.counter");
    // Creating many more instruments must not invalidate `c` (node-based
    // storage is part of the contract — hot paths cache these references).
    for (int i = 0; i < 100; ++i) {
        reg.counter("filler." + std::to_string(i));
    }
    c.add(3);
    EXPECT_EQ(reg.counter("stable.counter").value(), 3u);
}

/** Parses `name value` exposition lines (skipping # comments). */
std::map<std::string, double>
parse_prometheus(const std::string& text)
{
    std::map<std::string, double> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::size_t sp = line.rfind(' ');
        EXPECT_NE(sp, std::string::npos) << line;
        out[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
    }
    return out;
}

TEST(Registry, TextIsPrometheusParseable)
{
    Registry reg;
    reg.counter("serve.completed").add(4);
    reg.gauge("serve.queue_depth").set(2.0);
    Histogram& h = reg.histogram("serve.lat.seconds");
    h.observe(1e-3);
    h.observe(1e-3);
    h.observe(0.5);
    const std::string text = reg.text();

    // Type comments and the orion_/underscore/_total naming conventions.
    EXPECT_NE(text.find("# TYPE orion_serve_completed_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE orion_serve_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE orion_serve_lat_seconds histogram"),
              std::string::npos);

    const std::map<std::string, double> vals = parse_prometheus(text);
    EXPECT_DOUBLE_EQ(vals.at("orion_serve_completed_total"), 4.0);
    EXPECT_DOUBLE_EQ(vals.at("orion_serve_queue_depth"), 2.0);
    EXPECT_DOUBLE_EQ(vals.at("orion_serve_lat_seconds_count"), 3.0);
    EXPECT_NEAR(vals.at("orion_serve_lat_seconds_sum"), 0.502, 1e-9);
    // The +Inf bucket equals _count, and cumulative buckets are monotone.
    EXPECT_DOUBLE_EQ(vals.at("orion_serve_lat_seconds_bucket{le=\"+Inf\"}"),
                     3.0);
    double prev = 0.0;
    std::istringstream is(text);
    std::string line;
    int bucket_lines = 0;
    while (std::getline(is, line)) {
        if (line.rfind("orion_serve_lat_seconds_bucket{le=\"+Inf", 0) == 0) {
            continue;
        }
        if (line.rfind("orion_serve_lat_seconds_bucket", 0) == 0) {
            const double cum = std::stod(line.substr(line.rfind(' ') + 1));
            EXPECT_GE(cum, prev) << line;
            prev = cum;
            ++bucket_lines;
        }
    }
    EXPECT_EQ(bucket_lines, 2);  // two distinct non-empty buckets
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultRecordsNothing)
{
    ASSERT_FALSE(tracing_enabled());
    clear_trace();
    {
        TELEM_SPAN("test.disabled");
    }
    for (const TraceRecord& r : collect_trace_events()) {
        EXPECT_STRNE(r.event.name, "test.disabled");
    }
}

TEST(Tracer, NestedSpansStayWithinParent)
{
    set_tracing(true);
    clear_trace();
    {
        TELEM_SPAN("test.parent");
        {
            TELEM_SPAN_ID("test.child", 42);
            volatile int sink = 0;
            for (int i = 0; i < 1000; ++i) sink = sink + i;
        }
    }
    set_tracing(false);

    const TraceEvent* parent = nullptr;
    const TraceEvent* child = nullptr;
    int parent_tid = -1, child_tid = -2;
    const std::vector<TraceRecord> records = collect_trace_events();
    for (const TraceRecord& r : records) {
        if (std::string(r.event.name) == "test.parent") {
            parent = &r.event;
            parent_tid = r.tid;
        } else if (std::string(r.event.name) == "test.child") {
            child = &r.event;
            child_tid = r.tid;
        }
    }
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(parent_tid, child_tid);
    EXPECT_EQ(child->arg, 42);
    EXPECT_EQ(parent->arg, -1);
    // The child's interval nests inside the parent's.
    EXPECT_GE(child->t0_ns, parent->t0_ns);
    EXPECT_LE(child->t0_ns + child->dur_ns, parent->t0_ns + parent->dur_ns);
}

TEST(Tracer, RingOverflowDropsOldestAndCounts)
{
    set_trace_ring_capacity(4);
    set_tracing(true);
    clear_trace();
    // A fresh thread gets a fresh ring at the new (tiny) capacity; the
    // main thread's ring was sized at its first span and is unaffected.
    std::thread([] {
        for (int i = 0; i < 10; ++i) {
            TELEM_SPAN_ID("test.overflow", i);
        }
    }).join();
    set_tracing(false);
    set_trace_ring_capacity(std::size_t(1) << 15);

    std::vector<i64> ids;
    for (const TraceRecord& r : collect_trace_events()) {
        if (std::string(r.event.name) == "test.overflow") {
            ids.push_back(r.event.arg);
        }
    }
    // 10 spans through a 4-slot ring: the last 4 survive, oldest first.
    EXPECT_EQ(ids, (std::vector<i64>{6, 7, 8, 9}));
    EXPECT_EQ(trace_dropped(), 6u);
    clear_trace();
    EXPECT_EQ(trace_dropped(), 0u);
}

TEST(Tracer, TraceJsonIsWellFormed)
{
    set_tracing(true);
    clear_trace();
    {
        TELEM_SPAN("test.json_span");
        TELEM_SPAN_ID("test.json_arg", 7);
    }
    set_tracing(false);
    const std::string json = trace_json();

    // Structural checks: balanced braces/brackets, the Trace Event Format
    // envelope, and our events with complete-event phase markers.
    long depth_obj = 0, depth_arr = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
        if (in_string) continue;
        depth_obj += (c == '{') - (c == '}');
        depth_arr += (c == '[') - (c == ']');
        EXPECT_GE(depth_obj, 0);
        EXPECT_GE(depth_arr, 0);
    }
    EXPECT_EQ(depth_obj, 0);
    EXPECT_EQ(depth_arr, 0);
    EXPECT_FALSE(in_string);
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"test.json_span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"id\":7}"), std::string::npos);
    clear_trace();
}

TEST(Tracer, WriteTraceProducesReadableFile)
{
    set_tracing(true);
    clear_trace();
    {
        TELEM_SPAN("test.file_span");
    }
    set_tracing(false);
    const std::string path =
        testing::TempDir() + "/orion_telemetry_trace.json";
    ASSERT_TRUE(write_trace(path));
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        contents.append(buf, n);
    }
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(contents, trace_json());
    EXPECT_NE(contents.find("test.file_span"), std::string::npos);
    clear_trace();
}

}  // namespace
}  // namespace orion::telemetry
