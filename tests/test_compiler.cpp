#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/nn/models.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using core::CompileOptions;
using core::CompiledNetwork;
using core::Instruction;
using nn::ActivationSpec;
using nn::Network;

/** A small conv net with a residual block, used across compiler tests. */
Network
tiny_resnet(ActivationSpec::Kind act_kind)
{
    std::mt19937_64 rng(17);
    std::normal_distribution<double> dist(0.0, 0.3);
    auto weights = [&rng, &dist](u64 n) {
        std::vector<double> w(n);
        for (double& x : w) x = dist(rng);
        return w;
    };
    ActivationSpec act;
    switch (act_kind) {
    case ActivationSpec::Kind::kSquare:
        act = ActivationSpec::square();
        break;
    case ActivationSpec::Kind::kRelu:
        act = ActivationSpec::relu({3, 3});  // small composite for toy levels
        break;
    default:
        act = ActivationSpec::silu(15);
        break;
    }

    Network net("tiny-resnet");
    int id = net.add_input(2, 8, 8);
    lin::Conv2dSpec c1;
    c1.in_channels = 2;
    c1.out_channels = 4;
    c1.kernel_h = c1.kernel_w = 3;
    c1.pad = 1;
    id = net.add_conv2d(id, c1, weights(c1.weight_count()), weights(4));
    id = net.add_activation(id, act);
    const int fork = id;
    lin::Conv2dSpec c2;
    c2.in_channels = 4;
    c2.out_channels = 4;
    c2.kernel_h = c2.kernel_w = 3;
    c2.pad = 1;
    int bb = net.add_conv2d(fork, c2, weights(c2.weight_count()));
    std::vector<double> g(4, 1.1), b(4, 0.02), m(4, 0.01), v(4, 0.9);
    bb = net.add_batchnorm2d(bb, g, b, m, v);
    id = net.add_add(bb, fork);
    id = net.add_activation(id, act);
    id = net.add_avgpool2d(id, 2, 2);
    id = net.add_flatten(id);
    id = net.add_linear(id, 5, weights(5 * 4 * 4 * 4), weights(5));
    net.set_output(id);
    return net;
}

CompileOptions
toy_options(u64 slots, int l_eff)
{
    CompileOptions opt;
    opt.slots = slots;
    opt.l_eff = l_eff;
    opt.cost = core::CostModel::for_params(2 * slots * 2, 3, 3, 3);
    opt.calibration_samples = 3;
    opt.structural_only = true;
    return opt;
}

double
rel_err(const std::vector<double>& got, const std::vector<double>& want)
{
    double num = 0.0, den = 1e-12;
    for (std::size_t i = 0; i < want.size(); ++i) {
        num = std::max(num, std::abs(got[i] - want[i]));
        den = std::max(den, std::abs(want[i]));
    }
    return num / den;
}

TEST(Compiler, MlpCompilesAndSimulatesExactly)
{
    // x^2 activations are exact polynomials, so simulation must match the
    // cleartext network almost perfectly.
    const Network net = nn::make_mlp();
    const CompiledNetwork cn = core::compile(net, toy_options(4096, 6));
    EXPECT_EQ(cn.num_bootstraps, 0u);  // depth 5 fits in l_eff 6
    EXPECT_GT(cn.total_rotations, 0u);

    core::SimExecutor sim(cn, /*bootstrap_noise_std=*/0.0);
    const std::vector<double> x = random_vector(784, 1.0, 31);
    const core::ExecutionResult r = sim.run(x);
    const std::vector<double> expected = net.forward(x);
    EXPECT_LT(rel_err(r.output, expected), 1e-9);
    EXPECT_EQ(r.rotations, cn.total_rotations);
}

TEST(Compiler, ActivationDepthMatchesPaperAccounting)
{
    const Network net = nn::make_mlp();
    const CompiledNetwork cn = core::compile(net, toy_options(4096, 6));
    // Two x^2 activations, depth 1 each.
    EXPECT_EQ(cn.activation_depth, 2);
}

TEST(Compiler, TinyResnetWithSquareActs)
{
    const Network net = tiny_resnet(ActivationSpec::Kind::kSquare);
    const CompiledNetwork cn = core::compile(net, toy_options(1024, 5));
    core::SimExecutor sim(cn, 0.0);
    const std::vector<double> x = random_vector(2 * 8 * 8, 1.0, 32);
    const core::ExecutionResult r = sim.run(x);
    EXPECT_LT(rel_err(r.output, net.forward(x)), 1e-9);
}

TEST(Compiler, TinyResnetWithComposteReluRegions)
{
    const Network net = tiny_resnet(ActivationSpec::Kind::kRelu);
    const CompiledNetwork cn = core::compile(net, toy_options(1024, 6));
    core::SimExecutor sim(cn, 0.0);
    const std::vector<double> x = random_vector(2 * 8 * 8, 1.0, 33);
    const core::ExecutionResult r = sim.run(x);
    // The [3,3] composite ReLU is a crude sign approximation; compare
    // against the cleartext net loosely, and require the right argmax.
    const std::vector<double> expected = net.forward(x);
    EXPECT_LT(rel_err(r.output, expected), 0.7);
    // kMul instructions exist (the x * sign(x) joins).
    int muls = 0;
    for (const Instruction& ins : cn.program) {
        if (ins.op == Instruction::Op::kMul) ++muls;
    }
    EXPECT_EQ(muls, 2);
}

TEST(Compiler, SiluActivationAccuracy)
{
    const Network net = tiny_resnet(ActivationSpec::Kind::kSilu);
    const CompiledNetwork cn = core::compile(net, toy_options(1024, 6));
    core::SimExecutor sim(cn, 0.0);
    const std::vector<double> x = random_vector(2 * 8 * 8, 1.0, 34);
    const core::ExecutionResult r = sim.run(x);
    EXPECT_LT(rel_err(r.output, net.forward(x)), 0.05);
}

TEST(Compiler, DeepNetGetsBootstraps)
{
    // Chain enough activations that l_eff forces bootstrapping; the sim
    // must still match the cleartext model.
    std::mt19937_64 rng(35);
    std::normal_distribution<double> dist(0.0, 0.4);
    Network net("deep");
    int id = net.add_input(1, 4, 4);
    id = net.add_flatten(id);
    for (int i = 0; i < 6; ++i) {
        std::vector<double> w(16 * 16);
        for (double& v : w) v = dist(rng);
        id = net.add_linear(id, 16, w);
        id = net.add_activation(id, ActivationSpec::square());
    }
    std::vector<double> w(4 * 16);
    for (double& v : w) v = dist(rng);
    id = net.add_linear(id, 4, w);
    net.set_output(id);

    const CompiledNetwork cn = core::compile(net, toy_options(1024, 4));
    EXPECT_GE(cn.num_bootstraps, 2u);
    core::SimExecutor sim(cn, 0.0);
    const std::vector<double> x = random_vector(16, 1.0, 36);
    EXPECT_LT(rel_err(sim.run(x).output, net.forward(x)), 1e-9);
}

TEST(Compiler, SimLatencyMatchesPlacementModel)
{
    const Network net = tiny_resnet(ActivationSpec::Kind::kSquare);
    const CompiledNetwork cn = core::compile(net, toy_options(1024, 5));
    core::SimExecutor sim(cn, 0.0);
    const core::ExecutionResult r =
        sim.run(random_vector(2 * 8 * 8, 1.0, 37));
    // The executor charges the same cost model the placement optimized,
    // so totals agree up to the join bookkeeping.
    EXPECT_NEAR(r.modeled_latency, cn.modeled_latency,
                0.05 * cn.modeled_latency + 1e-9);
}

TEST(Compiler, RasterPackingNeedsMoreRotationsOnStridedNets)
{
    // Figure 5: raster packing of strided convs produces more diagonals
    // and thus more rotations than single-shot multiplexing.
    std::mt19937_64 rng(38);
    std::normal_distribution<double> dist(0.0, 0.3);
    auto weights = [&rng, &dist](u64 n) {
        std::vector<double> w(n);
        for (double& x : w) x = dist(rng);
        return w;
    };
    Network net("strided");
    int id = net.add_input(2, 16, 16);
    lin::Conv2dSpec c1;
    c1.in_channels = 2;
    c1.out_channels = 8;
    c1.kernel_h = c1.kernel_w = 3;
    c1.stride = 2;
    c1.pad = 1;
    id = net.add_conv2d(id, c1, weights(c1.weight_count()));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_flatten(id);
    id = net.add_linear(id, 4, weights(4 * 8 * 8 * 8));
    net.set_output(id);

    CompileOptions mux = toy_options(1024, 5);
    CompileOptions raster = toy_options(1024, 5);
    raster.packing = CompileOptions::Packing::kRaster;
    const CompiledNetwork cn_mux = core::compile(net, mux);
    const CompiledNetwork cn_raster = core::compile(net, raster);
    EXPECT_LT(cn_mux.total_rotations, cn_raster.total_rotations);

    // Both compile to correct programs.
    core::SimExecutor sim_mux(cn_mux, 0.0);
    core::SimExecutor sim_raster(cn_raster, 0.0);
    const std::vector<double> x = random_vector(2 * 16 * 16, 1.0, 39);
    EXPECT_LT(rel_err(sim_mux.run(x).output, net.forward(x)), 1e-9);
    EXPECT_LT(rel_err(sim_raster.run(x).output, net.forward(x)), 1e-9);
}

TEST(Compiler, DiagonalMethodNeedsMoreRotationsThanBsgs)
{
    const Network net = nn::make_mlp();
    CompileOptions with_bsgs = toy_options(4096, 6);
    CompileOptions without = toy_options(4096, 6);
    without.use_bsgs = false;
    const u64 bsgs_rots = core::compile(net, with_bsgs).total_rotations;
    const u64 diag_rots = core::compile(net, without).total_rotations;
    EXPECT_LT(bsgs_rots, diag_rots / 3);  // O(sqrt n) vs O(n)
}

TEST(Compiler, MultiCiphertextTensors)
{
    // An input bigger than one ciphertext: blocked matvec path.
    std::mt19937_64 rng(40);
    std::normal_distribution<double> dist(0.0, 0.2);
    Network net("wide");
    int id = net.add_input(4, 16, 16);  // 1024 slots at 512-slot blocks
    lin::Conv2dSpec c1;
    c1.in_channels = 4;
    c1.out_channels = 2;
    c1.kernel_h = c1.kernel_w = 3;
    c1.pad = 1;
    std::vector<double> w(c1.weight_count());
    for (double& v : w) v = dist(rng);
    id = net.add_conv2d(id, c1, w);
    net.set_output(id);

    const CompiledNetwork cn = core::compile(net, toy_options(512, 4));
    ASSERT_GE(cn.program.size(), 2u);
    EXPECT_EQ(cn.program.front().cts, 2u);  // input spans 2 ciphertexts
    core::SimExecutor sim(cn, 0.0);
    const std::vector<double> x = random_vector(4 * 16 * 16, 1.0, 41);
    EXPECT_LT(rel_err(sim.run(x).output, net.forward(x)), 1e-9);
}

TEST(Compiler, CkksExecutionMatchesSimulation)
{
    // The flagship integration test: the same compiled program executed
    // under real RNS-CKKS encryption agrees with the functional simulation
    // (and hence with cleartext PyTorch-style execution) to high precision.
    CkksEnv& env = CkksEnv::shared();
    const Network net = tiny_resnet(ActivationSpec::Kind::kSquare);
    CompileOptions opt = toy_options(env.ctx.slot_count(), 4);
    opt.structural_only = false;  // need value matrices for CKKS
    const CompiledNetwork cn = core::compile(net, opt);

    core::SimExecutor sim(cn, 0.0);
    core::CkksExecutor fhe(cn, env.ctx);
    const std::vector<double> x = random_vector(2 * 8 * 8, 1.0, 42);
    const core::ExecutionResult rs = sim.run(x);
    const ckks::OpCounters before = env.ctx.counters();
    const core::ExecutionResult rf = fhe.run(x);
    const ckks::OpCounters after = env.ctx.counters();

    ASSERT_EQ(rf.output.size(), rs.output.size());
    const double err = rel_err(rf.output, rs.output);
    EXPECT_LT(err, 1e-2);
    // Precision in bits, as reported in Table 2.
    double abs_err = 1e-12;
    for (std::size_t i = 0; i < rf.output.size(); ++i) {
        abs_err = std::max(abs_err, std::abs(rf.output[i] - rs.output[i]));
    }
    const double precision_bits = -std::log2(abs_err);
    EXPECT_GT(precision_bits, 4.0);
    // The measured kernel rotation count (Context counter delta) must
    // equal the compiler's static count, and the executor must report it.
    EXPECT_EQ(after.total_rotations() - before.total_rotations(),
              cn.total_rotations);
    EXPECT_EQ(rf.rotations, cn.total_rotations);
}

}  // namespace
}  // namespace orion::test
