#include <gtest/gtest.h>

#include <random>

#include "src/ckks/modarith.h"
#include "src/ckks/primes.h"

namespace orion::ckks {
namespace {

TEST(ModArith, BarrettMatchesNaive)
{
    std::mt19937_64 rng(1);
    for (u64 bits : {30ull, 40ull, 50ull, 60ull}) {
        const u64 q_val = generate_ntt_primes(static_cast<int>(bits), 1,
                                              1 << 10)[0];
        const Modulus q(q_val);
        std::uniform_int_distribution<u64> dist(0, q_val - 1);
        for (int i = 0; i < 200; ++i) {
            const u64 a = dist(rng);
            const u64 b = dist(rng);
            const u64 expected = static_cast<u64>((u128(a) * b) % q_val);
            EXPECT_EQ(mul_mod(a, b, q), expected);
        }
    }
}

TEST(ModArith, Reduce128)
{
    const Modulus q(998244353);  // NTT-friendly prime
    std::mt19937_64 rng(2);
    for (int i = 0; i < 200; ++i) {
        const u128 x = (u128(rng()) << 64) | rng();
        EXPECT_EQ(q.reduce_128(x), static_cast<u64>(x % q.value()));
    }
}

TEST(ModArith, ShoupMatchesBarrett)
{
    const u64 q_val = generate_ntt_primes(50, 1, 1 << 10)[0];
    const Modulus q(q_val);
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<u64> dist(0, q_val - 1);
    for (int i = 0; i < 200; ++i) {
        const u64 a = dist(rng);
        const u64 w = dist(rng);
        const u64 ws = shoup_precompute(w, q);
        EXPECT_EQ(mul_mod_shoup(a, w, ws, q), mul_mod(a, w, q));
    }
}

TEST(ModArith, AddSubNeg)
{
    const Modulus q(97);
    EXPECT_EQ(add_mod(96, 5, q), 4u);
    EXPECT_EQ(sub_mod(3, 5, q), 95u);
    EXPECT_EQ(neg_mod(0, q), 0u);
    EXPECT_EQ(neg_mod(96, q), 1u);
}

TEST(ModArith, PowAndInverse)
{
    const u64 q_val = generate_ntt_primes(40, 1, 1 << 10)[0];
    const Modulus q(q_val);
    std::mt19937_64 rng(4);
    std::uniform_int_distribution<u64> dist(1, q_val - 1);
    for (int i = 0; i < 50; ++i) {
        const u64 a = dist(rng);
        EXPECT_EQ(mul_mod(a, inv_mod(a, q), q), 1u);
    }
    EXPECT_EQ(pow_mod(2, 10, q), 1024u);
    EXPECT_EQ(pow_mod(5, 0, q), 1u);
}

TEST(ModArith, SignedReduction)
{
    const Modulus q(101);
    EXPECT_EQ(reduce_signed(-1, q), 100u);
    EXPECT_EQ(reduce_signed(-101, q), 0u);
    EXPECT_EQ(reduce_signed(205, q), 3u);
    EXPECT_EQ(reduce_signed_128(-i128(1) << 100, q),
              reduce_signed_128(i128(0) - ((i128(1) << 100) % 101), q));
    EXPECT_EQ(to_centered(100, q), -1);
    EXPECT_EQ(to_centered(50, q), 50);
    EXPECT_EQ(to_centered(51, q), -50);
}

TEST(ModArith, RejectsBadModulus)
{
    EXPECT_THROW(Modulus(0), Error);
    EXPECT_THROW(Modulus(1), Error);
    EXPECT_THROW(Modulus(u64(1) << 63), Error);
}

}  // namespace
}  // namespace orion::ckks
