/**
 * @file
 * orion::Session - the unified pipeline facade. Covers the paper-verb
 * flow (fit / compile / encrypt / run / decrypt), the module-tree
 * compile overload, simulation-only sessions, lifecycle errors, and the
 * serving path hanging off the same object.
 */

#include <gtest/gtest.h>

#include "src/core/orion.h"
#include "src/serve/serve.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

/** The micro-mlp as a module tree (fits toy CKKS parameters). */
nn::ModulePtr
micro_module()
{
    return nn::Sequential(
        {nn::Flatten(), nn::Linear(64, 16), nn::Square(),
         nn::Linear(16, 5)});
}

core::CompileOptions
fast_opts()
{
    core::CompileOptions opt;
    opt.calibration_samples = 3;
    return opt;
}

TEST(Session, ToyPipelineMatchesCleartext)
{
    auto net = micro_module();
    Session session = Session::toy();
    const core::CompiledNetwork& cn =
        session.compile(*net, 1, 8, 8, "micro", fast_opts());
    EXPECT_EQ(cn.name, "micro");
    EXPECT_TRUE(net->initialized());  // module keeps its weights

    const std::vector<double> x = random_vector(64, 1.0, 31);
    const std::vector<double> clear = session.network().forward(x);
    const core::ExecutionResult fhe = session.run(x);
    ASSERT_EQ(fhe.output.size(), clear.size());
    EXPECT_LT(max_abs_diff(fhe.output, clear), 1e-2);

    // Simulation agrees with the same program.
    const core::ExecutionResult sim = session.simulate(x);
    EXPECT_LT(max_abs_diff(sim.output, clear), 1e-2);
}

TEST(Session, EncryptRunEncryptedDecryptMatchesRun)
{
    auto net = micro_module();
    Session session = Session::toy();
    session.compile(*net, 1, 8, 8, "micro", fast_opts());

    const std::vector<double> x = random_vector(64, 1.0, 32);
    const std::vector<double> direct = session.run(x).output;

    const std::vector<ckks::Ciphertext> cts = session.encrypt(x);
    const core::EncryptedResult enc = session.run_encrypted(cts);
    const std::vector<double> out = session.decrypt(enc.outputs);
    ASSERT_EQ(out.size(), direct.size());
    // Fresh encryption noise differs per call; both runs decrypt to the
    // same logical outputs.
    EXPECT_LT(max_abs_diff(out, direct), 1e-3);
}

TEST(Session, RunBatchExecutesOnceAndMatchesCleartext)
{
    auto net = micro_module();
    Session session = Session::toy();
    core::CompileOptions opt = fast_opts();
    opt.batch = 4;
    session.compile(*net, 1, 8, 8, "micro", opt);
    ASSERT_GE(session.compiled().batch, 4);

    std::vector<std::vector<double>> inputs;
    for (int i = 0; i < 4; ++i) {
        inputs.push_back(random_vector(64, 1.0, 40 + static_cast<u64>(i)));
    }
    const std::vector<std::vector<double>> outs = session.run_batch(inputs);
    ASSERT_EQ(outs.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::vector<double> clear =
            session.network().forward(inputs[i]);
        ASSERT_EQ(outs[i].size(), clear.size());
        EXPECT_LT(max_abs_diff(outs[i], clear), 1e-2) << "lane " << i;
    }

    // The explicit encrypt/run/decrypt spelling agrees with run_batch.
    const std::vector<ckks::Ciphertext> cts = session.encrypt(inputs);
    const core::EncryptedResult enc = session.run_encrypted(cts);
    const std::vector<std::vector<double>> outs2 =
        session.decrypt_batch(enc.outputs, static_cast<int>(inputs.size()));
    ASSERT_EQ(outs2.size(), outs.size());
    for (std::size_t i = 0; i < outs.size(); ++i) {
        EXPECT_LT(max_abs_diff(outs2[i], outs[i]), 1e-3);
    }
}

TEST(Session, FitCalibrationDataChangesRangeEstimation)
{
    const nn::Network net = nn::make_micro_mlp();

    Session plain = Session::toy();
    const double nu_default =
        plain.compile(net, fast_opts()).input_nu;

    // Calibration data 8x the synthetic range: the estimated input range
    // grows, so the input normalization must shrink.
    std::vector<std::vector<double>> calib;
    for (int i = 0; i < 3; ++i) {
        calib.push_back(random_vector(64, 8.0, 100 + static_cast<u64>(i)));
    }
    Session fitted = Session::toy();
    fitted.fit(calib);
    const double nu_fitted =
        fitted.compile(net, fast_opts()).input_nu;

    EXPECT_LT(nu_fitted, nu_default);
}

TEST(Session, SimulationOnlySessionSimulatesButCannotRun)
{
    const nn::Network net = nn::make_resnet_cifar(8, nn::Act::kRelu);
    Session session = Session::simulation();
    EXPECT_FALSE(session.has_context());

    core::CompileOptions opt = fast_opts();
    opt.structural_only = true;
    const core::CompiledNetwork& cn = session.compile(net, opt);
    EXPECT_EQ(cn.slots, u64(1) << 15);
    EXPECT_EQ(cn.l_eff, 10);

    const std::vector<double> x = random_vector(3 * 32 * 32, 1.0, 33);
    const core::ExecutionResult r = session.simulate(x);
    EXPECT_EQ(r.output.size(), 10u);

    expect_throw_contains<Error>([&] { session.run(x); },
                                 "simulation-only");
    expect_throw_contains<Error>([&] { session.encrypt(x); },
                                 "simulation-only");
    expect_throw_contains<Error>([&] { (void)session.context(); },
                                 "simulation-only");
}

TEST(Session, VerbsBeforeCompileThrow)
{
    Session session = Session::toy();
    const std::vector<double> x(64, 0.0);
    expect_throw_contains<Error>([&] { session.run(x); },
                                 "before compile()");
    expect_throw_contains<Error>([&] { session.simulate(x); },
                                 "before compile()");
    expect_throw_contains<Error>([&] { (void)session.compiled(); },
                                 "before compile()");
    expect_throw_contains<Error>([&] { (void)session.network(); },
                                 "module-tree compile()");
}

TEST(Session, StructuralProgramsRefuseTheCkksBackend)
{
    const nn::Network net = nn::make_micro_mlp();
    Session session = Session::toy();
    core::CompileOptions opt = fast_opts();
    opt.structural_only = true;
    session.compile(net, opt);

    const std::vector<double> x = random_vector(64, 1.0, 34);
    EXPECT_EQ(session.simulate(x).output.size(), 5u);
    expect_throw_contains<Error>([&] { session.run(x); },
                                 "structural_only");
    // The rejection names the offending instruction, not just "the
    // program": kind plus originating layer id.
    expect_throw_contains<Error>([&] { session.run(x); },
                                 "kLinear (layer");
}

TEST(Session, RecompileInvalidatesDerivedState)
{
    Session session = Session::toy();
    auto a = micro_module();
    session.compile(*a, 1, 8, 8, "a", fast_opts());
    const std::vector<double> x = random_vector(64, 1.0, 35);
    EXPECT_EQ(session.run(x).output.size(), 5u);

    // A different head: 3 outputs instead of 5.
    auto b = nn::Sequential(
        {nn::Flatten(), nn::Linear(64, 16), nn::Square(),
         nn::Linear(16, 3)});
    session.compile(*b, 1, 8, 8, "b", fast_opts());
    EXPECT_EQ(session.run(x).output.size(), 3u);
    EXPECT_EQ(session.network().network_name(), "b");

    // Recompiling from a raw Network drops the previously lowered IR.
    session.compile(nn::make_micro_mlp(), fast_opts());
    EXPECT_EQ(session.run(x).output.size(), 5u);
    expect_throw_contains<Error>([&] { (void)session.network(); },
                                 "module-tree compile()");
}

TEST(Session, ServePathSharesTheSessionPipeline)
{
    const nn::Network net = nn::make_micro_mlp();
    Session session = Session::toy();
    session.compile(net, fast_opts());

    serve::ServeOptions sopts;
    sopts.max_inflight = 1;
    sopts.queue_capacity = 4;
    auto server = session.serve(sopts);
    EXPECT_EQ(server->prepared(), session.prepared());

    serve::ServeClient client = session.serve_client(/*seed=*/4242);
    client.set_session_id(server->register_session(client.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 36);
    const std::vector<double> want = session.run(x).output;

    auto fut = server->submit(client.make_request(x));
    const serve::ServeReply reply = fut.get();
    const std::vector<double> got = client.decrypt_response(reply.response);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_LT(max_abs_diff(got, want), 1e-3);
}

TEST(Session, DefaultSeededClientsGetDistinctSecrets)
{
    const nn::Network net = nn::make_micro_mlp();
    Session session = Session::toy();
    session.compile(net, fast_opts());

    // No explicit seed: entropy must be fresh per client, so two bundles
    // never share key material.
    serve::ServeClient a = session.serve_client();
    serve::ServeClient b = session.serve_client();
    EXPECT_NE(a.key_bundle(), b.key_bundle());
}

}  // namespace
}  // namespace orion::test
