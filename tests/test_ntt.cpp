#include <gtest/gtest.h>

#include <random>

#include "src/ckks/ntt.h"
#include "src/ckks/primes.h"

namespace orion::ckks {
namespace {

std::vector<u64>
random_poly(u64 n, const Modulus& q, u64 seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<u64> dist(0, q.value() - 1);
    std::vector<u64> out(n);
    for (u64& x : out) x = dist(rng);
    return out;
}

/** Schoolbook negacyclic product: c = a*b mod (X^n + 1, q). */
std::vector<u64>
negacyclic_mul(const std::vector<u64>& a, const std::vector<u64>& b,
               const Modulus& q)
{
    const u64 n = a.size();
    std::vector<u64> c(n, 0);
    for (u64 i = 0; i < n; ++i) {
        for (u64 j = 0; j < n; ++j) {
            const u64 prod = mul_mod(a[i], b[j], q);
            const u64 k = i + j;
            if (k < n) {
                c[k] = add_mod(c[k], prod, q);
            } else {
                c[k - n] = sub_mod(c[k - n], prod, q);
            }
        }
    }
    return c;
}

class NttTest : public ::testing::TestWithParam<u64> {};

TEST_P(NttTest, RoundTrip)
{
    const u64 n = GetParam();
    const Modulus q(generate_ntt_primes(45, 1, n)[0]);
    const NttTables tables(n, q);
    const std::vector<u64> original = random_poly(n, q, 10 + n);
    std::vector<u64> a = original;
    tables.forward(a.data());
    EXPECT_NE(a, original);  // astronomically unlikely to be fixed
    tables.inverse(a.data());
    EXPECT_EQ(a, original);
}

TEST_P(NttTest, PointwiseProductIsNegacyclicConvolution)
{
    const u64 n = GetParam();
    if (n > 512) GTEST_SKIP() << "schoolbook too slow beyond 512";
    const Modulus q(generate_ntt_primes(45, 1, n)[0]);
    const NttTables tables(n, q);
    const std::vector<u64> a = random_poly(n, q, 21);
    const std::vector<u64> b = random_poly(n, q, 22);
    const std::vector<u64> expected = negacyclic_mul(a, b, q);

    std::vector<u64> fa = a;
    std::vector<u64> fb = b;
    tables.forward(fa.data());
    tables.forward(fb.data());
    for (u64 i = 0; i < n; ++i) fa[i] = mul_mod(fa[i], fb[i], q);
    tables.inverse(fa.data());
    EXPECT_EQ(fa, expected);
}

TEST_P(NttTest, Linearity)
{
    const u64 n = GetParam();
    const Modulus q(generate_ntt_primes(45, 1, n)[0]);
    const NttTables tables(n, q);
    std::vector<u64> a = random_poly(n, q, 31);
    std::vector<u64> b = random_poly(n, q, 32);
    std::vector<u64> sum(n);
    for (u64 i = 0; i < n; ++i) sum[i] = add_mod(a[i], b[i], q);
    tables.forward(a.data());
    tables.forward(b.data());
    tables.forward(sum.data());
    for (u64 i = 0; i < n; ++i) {
        EXPECT_EQ(sum[i], add_mod(a[i], b[i], q));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttTest,
                         ::testing::Values(u64(8), u64(64), u64(256),
                                           u64(2048)));

TEST(Ntt, MonomialShift)
{
    // X * a(X) rotates coefficients with negacyclic wraparound.
    const u64 n = 64;
    const Modulus q(generate_ntt_primes(45, 1, n)[0]);
    const NttTables tables(n, q);
    std::vector<u64> a = random_poly(n, q, 77);
    std::vector<u64> x(n, 0);
    x[1] = 1;  // the monomial X
    std::vector<u64> fa = a;
    tables.forward(fa.data());
    tables.forward(x.data());
    for (u64 i = 0; i < n; ++i) fa[i] = mul_mod(fa[i], x[i], q);
    tables.inverse(fa.data());
    EXPECT_EQ(fa[0], neg_mod(a[n - 1], q));
    for (u64 i = 1; i < n; ++i) EXPECT_EQ(fa[i], a[i - 1]);
}

}  // namespace
}  // namespace orion::ckks
