#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/ckks/kernels.h"
#include "src/ckks/ntt.h"
#include "src/ckks/primes.h"
#include "src/ckks/serial.h"
#include "src/core/arena.h"
#include "src/core/thread_pool.h"
#include "test_util.h"

/**
 * @file
 * Bit-identity of every vectorized kernel against the scalar reference.
 *
 * The dispatch contract (kernels.h) says AVX2/AVX-512 variants are
 * bit-identical to scalar on EVERY input, so these tests drive each
 * kernel with adversarial residues (q - 1 under a 61-bit modulus, the
 * largest the lazy-range proofs admit) and with sizes that are not lane
 * multiples, forcing the scalar-tail paths. The forced-dispatch test
 * exercises the same override the ORION_SIMD environment variable uses
 * (ORION_SIMD=scalar|avx2|avx512, clamped to host support), and the
 * thread sweep pins the "bit-identical for ANY thread count" guarantee
 * per ISA.
 */

namespace orion::ckks {
namespace {

namespace k = kernels;

/** Every ISA this build + host can actually run. */
std::vector<k::Isa>
supported_isas()
{
    std::vector<k::Isa> out;
    for (k::Isa isa : {k::Isa::kScalar, k::Isa::kAvx2, k::Isa::kAvx512}) {
        if (k::isa_supported(isa)) out.push_back(isa);
    }
    return out;
}

/** Restores the active ISA on scope exit (set_isa is process-global). */
struct IsaGuard {
    k::Isa saved = k::active_isa();
    ~IsaGuard() { k::set_isa(saved); }
};

/**
 * Residues stressing the lane carry chains: exact q - 1 / q - 2 runs (the
 * largest canonical values, so products and sums sit at the top of every
 * proven range), zeros and ones, then uniform randoms.
 */
std::vector<u64>
adversarial_residues(u64 n, const Modulus& q, u64 seed)
{
    std::vector<u64> out(n);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<u64> dist(0, q.value() - 1);
    for (u64 j = 0; j < n; ++j) {
        switch (j % 5) {
            case 0: out[j] = q.value() - 1; break;
            case 1: out[j] = q.value() - 2; break;
            case 2: out[j] = 0; break;
            case 3: out[j] = 1; break;
            default: out[j] = dist(rng); break;
        }
    }
    return out;
}

/** Lazy residues in [0, 4q), the widest range normalize_lazy accepts. */
std::vector<u64>
adversarial_lazy(u64 n, const Modulus& q, u64 seed)
{
    std::vector<u64> out(n);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<u64> dist(0, 4 * q.value() - 1);
    for (u64 j = 0; j < n; ++j) {
        out[j] = (j % 4 == 0) ? 4 * q.value() - 1 - (j % 3) : dist(rng);
    }
    return out;
}

/** A 61-bit NTT prime — the largest modulus the kernels must support.
 *  Generated once for the largest ring used here (q = 1 mod 2 * 4096
 *  implies NTT-friendliness for every smaller power-of-two ring too). */
Modulus
big_modulus(u64 /*poly_degree*/ = 1 << 12)
{
    static const u64 q = generate_ntt_primes(61, 1, u64(1) << 12)[0];
    return Modulus(q);
}

// Sizes around every lane boundary: below AVX2's 4, between 4 and AVX-512's
// 8, multiples of both, and odd sizes that leave 1..7-element tails.
const std::vector<u64> kSizes = {1,  2,  3,  4,  5,   7,   8,   9,   15, 16,
                                 17, 31, 32, 33, 63,  64,  65,  100, 127,
                                 255, 256, 1000};

TEST(KernelsSimd, DispatchSanity)
{
    EXPECT_TRUE(k::isa_supported(k::Isa::kScalar));
    EXPECT_TRUE(k::isa_supported(k::best_supported_isa()));
    EXPECT_TRUE(k::isa_supported(k::active_isa()));
    EXPECT_STREQ(k::isa_name(k::Isa::kScalar), "scalar");
    EXPECT_STREQ(k::isa_name(k::Isa::kAvx2), "avx2");
    EXPECT_STREQ(k::isa_name(k::Isa::kAvx512), "avx512");
}

TEST(KernelsSimd, ElementwiseKernelsBitIdenticalToScalar)
{
    const Modulus q = big_modulus();
    const k::KernelTable& ref = k::table(k::Isa::kScalar);
    const u64 w = q.value() - 1;
    const u64 w_shoup = shoup_precompute(w, q);
    for (k::Isa isa : supported_isas()) {
        if (isa == k::Isa::kScalar) continue;
        const k::KernelTable& vec = k::table(isa);
        for (u64 n : kSizes) {
            const std::vector<u64> a0 = adversarial_residues(n, q, 11 + n);
            const std::vector<u64> b = adversarial_residues(n, q, 23 + n);
            const std::vector<u64> c = adversarial_residues(n, q, 37 + n);

            std::vector<u64> s = a0, v = a0;
            ref.add_mod_n(s.data(), b.data(), n, q);
            vec.add_mod_n(v.data(), b.data(), n, q);
            EXPECT_EQ(s, v) << k::isa_name(isa) << " add_mod_n n=" << n;

            s = a0; v = a0;
            ref.sub_mod_n(s.data(), b.data(), n, q);
            vec.sub_mod_n(v.data(), b.data(), n, q);
            EXPECT_EQ(s, v) << k::isa_name(isa) << " sub_mod_n n=" << n;

            s = a0; v = a0;
            ref.mul_mod_n(s.data(), b.data(), n, q);
            vec.mul_mod_n(v.data(), b.data(), n, q);
            EXPECT_EQ(s, v) << k::isa_name(isa) << " mul_mod_n n=" << n;

            s = a0; v = a0;
            ref.add_product_n(s.data(), b.data(), c.data(), n, q);
            vec.add_product_n(v.data(), b.data(), c.data(), n, q);
            EXPECT_EQ(s, v) << k::isa_name(isa) << " add_product_n n=" << n;

            // Both the out-of-place and the aliased (a == src) forms.
            s.assign(n, 0); v.assign(n, 0);
            ref.mul_scalar_shoup_n(s.data(), a0.data(), n, w, w_shoup, q);
            vec.mul_scalar_shoup_n(v.data(), a0.data(), n, w, w_shoup, q);
            EXPECT_EQ(s, v)
                << k::isa_name(isa) << " mul_scalar_shoup_n n=" << n;
            s = a0; v = a0;
            ref.mul_scalar_shoup_n(s.data(), s.data(), n, w, w_shoup, q);
            vec.mul_scalar_shoup_n(v.data(), v.data(), n, w, w_shoup, q);
            EXPECT_EQ(s, v)
                << k::isa_name(isa) << " mul_scalar_shoup_n aliased n=" << n;

            const std::vector<u64> lazy = adversarial_lazy(n, q, 53 + n);
            s = lazy; v = lazy;
            ref.normalize_lazy_n(s.data(), n, q);
            vec.normalize_lazy_n(v.data(), n, q);
            EXPECT_EQ(s, v) << k::isa_name(isa) << " normalize_lazy_n n=" << n;
        }
    }
}

TEST(KernelsSimd, KsInnerProductBitIdenticalToScalar)
{
    const Modulus q = big_modulus();
    const k::KernelTable& ref = k::table(k::Isa::kScalar);
    // 17 and 40 digits cross the 16-term chunk boundary, exercising the
    // mid-accumulation Barrett reduction in the lane (lo, hi) pairs.
    const std::vector<u64> kDigits = {1, 2, 3, 16, 17, 40};
    for (k::Isa isa : supported_isas()) {
        if (isa == k::Isa::kScalar) continue;
        const k::KernelTable& vec = k::table(isa);
        for (u64 n : kSizes) {
            for (u64 nd : kDigits) {
                std::vector<std::vector<u64>> xs_s(nd), bs_s(nd), as_s(nd);
                std::vector<const u64*> xs(nd), bs(nd), as(nd);
                for (u64 d = 0; d < nd; ++d) {
                    xs_s[d] = adversarial_residues(n, q, 100 + 3 * d);
                    bs_s[d] = adversarial_residues(n, q, 101 + 3 * d);
                    as_s[d] = adversarial_residues(n, q, 102 + 3 * d);
                    xs[d] = xs_s[d].data();
                    bs[d] = bs_s[d].data();
                    as[d] = as_s[d].data();
                }
                // Carried-in partial sums at their maximum (q - 1).
                const std::vector<u64> carry0 =
                    adversarial_residues(n, q, 7 + n);
                const std::vector<u64> carry1 =
                    adversarial_residues(n, q, 9 + n);
                std::vector<u64> s0 = carry0, s1 = carry1;
                std::vector<u64> v0 = carry0, v1 = carry1;
                ref.ks_inner_product(s0.data(), s1.data(), xs.data(),
                                     bs.data(), as.data(), nd, n, q);
                vec.ks_inner_product(v0.data(), v1.data(), xs.data(),
                                     bs.data(), as.data(), nd, n, q);
                EXPECT_EQ(s0, v0) << k::isa_name(isa) << " ks o0 n=" << n
                                  << " digits=" << nd;
                EXPECT_EQ(s1, v1) << k::isa_name(isa) << " ks o1 n=" << n
                                  << " digits=" << nd;
            }
        }
    }
}

TEST(KernelsSimd, BaseConvAccBitIdenticalToScalar)
{
    const Modulus q = big_modulus();
    const k::KernelTable& ref = k::table(k::Isa::kScalar);
    for (k::Isa isa : supported_isas()) {
        if (isa == k::Isa::kScalar) continue;
        const k::KernelTable& vec = k::table(isa);
        for (u64 n : kSizes) {
            for (int len : {0, 1, 3, 32}) {
                std::vector<std::vector<u64>> lam_s(len);
                std::vector<const u64*> lams(len);
                std::vector<u64> hats(len);
                for (int d = 0; d < len; ++d) {
                    lam_s[d] = adversarial_residues(n, q, 200 + d);
                    lams[d] = lam_s[d].data();
                    hats[d] = q.value() - 1 - static_cast<u64>(d % 3);
                }
                std::vector<u64> s(n, 99), v(n, 99);
                ref.base_conv_acc(s.data(), lams.data(), hats.data(), len, n,
                                  q);
                vec.base_conv_acc(v.data(), lams.data(), hats.data(), len, n,
                                  q);
                EXPECT_EQ(s, v) << k::isa_name(isa) << " base_conv n=" << n
                                << " len=" << len;
            }
        }
    }
}

TEST(KernelsSimd, NttBitIdenticalAcrossIsas)
{
    // Small n (4, 8) sit below the vector kernels' lane minimums and must
    // take their scalar fallback; larger n exercise all fused stages.
    for (u64 n : {u64(4), u64(8), u64(16), u64(32), u64(64), u64(1024),
                  u64(4096)}) {
        const Modulus q = big_modulus(n);
        const NttTables tables(n, q);
        const k::NttView view = tables.view();
        const std::vector<u64> input = adversarial_residues(n, q, 300 + n);

        std::vector<u64> fwd_ref = input;
        k::table(k::Isa::kScalar).ntt_forward(view, fwd_ref.data());
        std::vector<u64> inv_ref = fwd_ref;
        k::table(k::Isa::kScalar).ntt_inverse(view, inv_ref.data());
        EXPECT_EQ(inv_ref, input) << "scalar roundtrip n=" << n;

        for (k::Isa isa : supported_isas()) {
            if (isa == k::Isa::kScalar) continue;
            std::vector<u64> fwd = input;
            k::table(isa).ntt_forward(view, fwd.data());
            EXPECT_EQ(fwd, fwd_ref)
                << k::isa_name(isa) << " forward n=" << n;
            std::vector<u64> inv = fwd;
            k::table(isa).ntt_inverse(view, inv.data());
            EXPECT_EQ(inv, input) << k::isa_name(isa) << " roundtrip n=" << n;
        }
    }
}

TEST(KernelsSimd, ForcedDispatchMatchesDirectTables)
{
    // set_isa is the hook behind ORION_SIMD=scalar|avx2|avx512: after
    // forcing, every library entry point (here NttTables::forward) must
    // route through the forced table.
    IsaGuard guard;
    const u64 n = 256;
    const Modulus q = big_modulus(n);
    const NttTables tables(n, q);
    const std::vector<u64> input = adversarial_residues(n, q, 400);
    std::vector<u64> ref = input;
    k::table(k::Isa::kScalar).ntt_forward(tables.view(), ref.data());
    for (k::Isa isa : supported_isas()) {
        k::set_isa(isa);
        EXPECT_EQ(k::active_isa(), isa);
        std::vector<u64> a = input;
        tables.forward(a.data());
        EXPECT_EQ(a, ref) << "forced " << k::isa_name(isa);
    }
}

TEST(KernelsSimd, RotationBitIdenticalAcrossIsasAndThreads)
{
    // One fixed ciphertext, rotated under every (ISA, thread count) combo:
    // the serialized results must be byte-identical — rotation exercises
    // NTTs, the key-switch inner product, base conversion, and the whole
    // lazy modarith layer at once.
    IsaGuard guard;
    auto& env = test::CkksEnv::shared();
    const std::vector<double> values =
        test::random_vector(env.ctx.degree() / 2, 1.0, 77);
    const Ciphertext ct = test::encrypt_vector(env, values, 2);

    std::vector<u8> baseline;
    for (k::Isa isa : supported_isas()) {
        k::set_isa(isa);
        for (int threads : {1, 2, 4}) {
            core::ScopedPoolOverride pool(threads);
            Ciphertext r = env.eval.rotate(ct, 3);
            const std::vector<u8> bytes = serial::serialize(r);
            if (baseline.empty()) {
                baseline = bytes;
            } else {
                EXPECT_EQ(bytes, baseline)
                    << k::isa_name(isa) << " x " << threads << " threads";
            }
        }
    }
    EXPECT_FALSE(baseline.empty());
}

TEST(KernelsSimd, HotLoopsAllocationFreeAfterWarmup)
{
    // The acceptance bar for the arena: once the pool is warm, rotation
    // (key-switch decompose + inner product) and BSGS accumulation serve
    // every RnsPoly buffer from the pool — poly_alloc and poly_arena_hit
    // advance in lockstep, i.e. zero heap allocations per op.
    auto& env = test::CkksEnv::shared();
    const std::vector<double> values =
        test::random_vector(env.ctx.degree() / 2, 1.0, 88);
    const Ciphertext ct = test::encrypt_vector(env, values, 2);

    for (int warm = 0; warm < 3; ++warm) {
        (void)env.eval.rotate(ct, 1);
        Evaluator::Hoisted h = env.eval.hoist(ct);
        (void)env.eval.rotate_hoisted(h, 2);
    }

    const OpCounters before = env.ctx.counters();
    for (int i = 0; i < 4; ++i) {
        (void)env.eval.rotate(ct, 1);
        Evaluator::Hoisted h = env.eval.hoist(ct);
        (void)env.eval.rotate_hoisted(h, 2);
    }
    const OpCounters after = env.ctx.counters();

    const u64 allocs = after.poly_alloc - before.poly_alloc;
    const u64 hits = after.poly_arena_hit - before.poly_arena_hit;
    EXPECT_GT(allocs, u64(0)) << "rotations must acquire scratch polys";
    EXPECT_EQ(allocs, hits) << "steady-state rotations hit the heap";
}

TEST(KernelsSimd, HoistedRotationsDecomposeOnce)
{
    // The cross-stage hoisting contract: one digit decomposition per
    // hoisted input, however many rotations are served from it.
    auto& env = test::CkksEnv::shared();
    const std::vector<double> values =
        test::random_vector(env.ctx.degree() / 2, 1.0, 99);
    const Ciphertext ct = test::encrypt_vector(env, values, 2);

    const u64 before = env.ctx.counters().decompose;
    Evaluator::Hoisted h = env.eval.hoist(ct);
    (void)env.eval.rotate_hoisted(h, 1);
    (void)env.eval.rotate_hoisted(h, 2);
    (void)env.eval.rotate_hoisted(h, 3);
    const u64 after = env.ctx.counters().decompose;
    EXPECT_EQ(after - before, u64(1));
}

TEST(KernelsSimd, ArenaStatsAndReuse)
{
    core::Arena& arena = core::Arena::instance();
    const core::ArenaStats s0 = arena.stats();
    EXPECT_GE(s0.acquires, s0.pool_hits);

    {
        core::ArenaVec<u64> v;
        EXPECT_TRUE(v.empty());
        const core::ArenaAcquire first = v.acquire(1000);
        EXPECT_NE(first, core::ArenaAcquire::kReused);
        EXPECT_EQ(v.size(), 1000u);
        // Shrinking within capacity never reallocates.
        v.resize_down(10);
        EXPECT_EQ(v.acquire(500), core::ArenaAcquire::kReused);
        EXPECT_EQ(v.acquire(1000), core::ArenaAcquire::kReused);
    }
    // The block the vector released is now pooled (TLS front cache or
    // global list): an identical acquisition must be a pool hit.
    {
        core::ArenaVec<u64> v;
        EXPECT_EQ(v.acquire(1000), core::ArenaAcquire::kPool);
    }
    const core::ArenaStats s1 = arena.stats();
    EXPECT_GT(s1.acquires, s0.acquires);
    EXPECT_GT(s1.pool_hits, s0.pool_hits);
}

}  // namespace
}  // namespace orion::ckks
