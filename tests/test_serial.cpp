#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "src/ckks/serial.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

namespace serial = ckks::serial;
using serial::Bytes;

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

TEST(Serial, ParamsRoundTrip)
{
    const ckks::CkksParams p = ckks::CkksParams::network(u64(1) << 13, 11);
    const Bytes bytes = serial::serialize(p);
    const ckks::CkksParams back = serial::deserialize_params(bytes);
    EXPECT_EQ(back.poly_degree, p.poly_degree);
    EXPECT_EQ(back.log_scale, p.log_scale);
    EXPECT_EQ(back.first_prime_bits, p.first_prime_bits);
    EXPECT_EQ(back.num_scale_primes, p.num_scale_primes);
    EXPECT_EQ(back.special_prime_bits, p.special_prime_bits);
    EXPECT_EQ(back.digit_size, p.digit_size);
    EXPECT_EQ(back.seed, p.seed);
    EXPECT_TRUE(serial::params_compatible(back, p));

    // Bootstrap-relevant fields survive the wire too (v2).
    const ckks::CkksParams boot = ckks::CkksParams::bootstrap_toy();
    const ckks::CkksParams boot_back =
        serial::deserialize_params(serial::serialize(boot));
    EXPECT_EQ(boot_back.secret_weight, boot.secret_weight);
}

TEST(Serial, ParamsCompatibilityIgnoresSeedOnly)
{
    ckks::CkksParams a = ckks::CkksParams::toy();
    ckks::CkksParams b = a;
    b.seed = 999;
    EXPECT_TRUE(serial::params_compatible(a, b));
    b = a;
    b.num_scale_primes += 1;
    EXPECT_FALSE(serial::params_compatible(a, b));
    // The secret's Hamming weight changes the bootstrap circuit (range
    // bound K), so it is part of compatibility.
    b = a;
    b.secret_weight = 32;
    EXPECT_FALSE(serial::params_compatible(a, b));
}

TEST(Serial, PolyRoundTripAllForms)
{
    CkksEnv& env = CkksEnv::shared();
    for (const int level : {0, 2, env.ctx.max_level()}) {
        // NTT-form ciphertext component.
        const ckks::Ciphertext ct =
            encrypt_vector(env, random_vector(100, 1.0, 7), level);
        const Bytes bytes = serial::serialize(ct.c0);
        const ckks::RnsPoly back = serial::deserialize_poly(bytes, env.ctx);
        EXPECT_EQ(back.level(), level);
        EXPECT_TRUE(back.is_ntt());
        // Byte-identical re-serialization == limb-exact round trip.
        EXPECT_EQ(serial::serialize(back), bytes);

        // Coefficient form.
        ckks::RnsPoly coeff = ct.c1;
        coeff.to_coeff();
        const Bytes cbytes = serial::serialize(coeff);
        const ckks::RnsPoly cback =
            serial::deserialize_poly(cbytes, env.ctx);
        EXPECT_FALSE(cback.is_ntt());
        EXPECT_EQ(serial::serialize(cback), cbytes);
    }
}

TEST(Serial, CiphertextRoundTripAcrossParameterPoints)
{
    // Several (N, L) points: the shared toy context plus a larger ring
    // with a shorter chain.
    CkksEnv& env = CkksEnv::shared();
    struct Point {
        const ckks::Context* ctx;
        const ckks::Encoder* encoder;
        int level;
    };
    ckks::CkksParams big_params = ckks::CkksParams::toy();
    big_params.poly_degree = u64(1) << 12;
    big_params.num_scale_primes = 4;
    const ckks::Context big_ctx(big_params);
    const ckks::Encoder big_encoder(big_ctx);
    ckks::KeyGenerator big_keygen(big_ctx, 13);
    const ckks::PublicKey big_pk = big_keygen.make_public_key();
    ckks::Encryptor big_encryptor(big_ctx, big_pk);
    const ckks::Decryptor big_decryptor(big_ctx,
                                        big_keygen.secret_key());

    for (const int level : {1, 3}) {
        const std::vector<double> values = random_vector(64, 1.0, level);
        // Toy point.
        {
            const ckks::Ciphertext ct = encrypt_vector(env, values, level);
            const Bytes bytes = serial::serialize(ct);
            const ckks::Ciphertext back =
                serial::deserialize_ciphertext(bytes, env.ctx);
            EXPECT_EQ(back.level(), level);
            EXPECT_DOUBLE_EQ(back.scale, ct.scale);
            EXPECT_EQ(serial::serialize(back), bytes);
            const std::vector<double> got = decrypt_vector(env, back);
            EXPECT_LT(max_abs_diff(
                          std::vector<double>(got.begin(), got.begin() + 64),
                          values),
                      1e-4);
        }
        // Larger-ring point.
        {
            const ckks::Plaintext pt =
                big_encoder.encode(values, level, big_ctx.scale());
            const ckks::Ciphertext ct = big_encryptor.encrypt(pt);
            const Bytes bytes = serial::serialize(ct);
            const ckks::Ciphertext back =
                serial::deserialize_ciphertext(bytes, big_ctx);
            EXPECT_EQ(serial::serialize(back), bytes);
            const std::vector<double> got =
                big_encoder.decode(big_decryptor.decrypt(back));
            EXPECT_LT(max_abs_diff(
                          std::vector<double>(got.begin(), got.begin() + 64),
                          values),
                      1e-4);
        }
    }
}

TEST(Serial, PlaintextRoundTrip)
{
    CkksEnv& env = CkksEnv::shared();
    const ckks::Plaintext pt = env.encoder.encode(
        random_vector(50, 1.0, 3), 2, env.ctx.scale());
    const Bytes bytes = serial::serialize(pt);
    const ckks::Plaintext back =
        serial::deserialize_plaintext(bytes, env.ctx);
    EXPECT_EQ(serial::serialize(back), bytes);
}

TEST(Serial, PublicKeyRoundTripEncrypts)
{
    CkksEnv& env = CkksEnv::shared();
    const Bytes bytes = serial::serialize(env.pk);
    const ckks::PublicKey back =
        serial::deserialize_public_key(bytes, env.ctx);
    EXPECT_EQ(serial::serialize(back), bytes);

    // A ciphertext made with the deserialized key must decrypt correctly.
    ckks::Encryptor enc(env.ctx, back, /*seed=*/123);
    const std::vector<double> values = random_vector(80, 1.0, 17);
    const ckks::Ciphertext ct = enc.encrypt(env.encoder.encode(
        values, env.ctx.max_level(), env.ctx.scale()));
    const std::vector<double> got = decrypt_vector(env, ct);
    EXPECT_LT(max_abs_diff(
                  std::vector<double>(got.begin(), got.begin() + 80),
                  values),
              1e-4);
}

TEST(Serial, RelinKeyRoundTripIsBitExactInUse)
{
    CkksEnv& env = CkksEnv::shared();
    const Bytes bytes = serial::serialize(env.relin);
    const ckks::KswitchKey back =
        serial::deserialize_kswitch_key(bytes, env.ctx);
    EXPECT_EQ(serial::serialize(back), bytes);

    // Squaring with the deserialized key must be bit-identical.
    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(64, 0.5, 23), 3);
    ckks::Evaluator eval2(env.ctx, env.encoder);
    eval2.set_relin_key(&back);
    eval2.set_galois_keys(&env.galois);
    const ckks::Ciphertext want = env.eval.square(ct);
    const ckks::Ciphertext got = eval2.square(ct);
    EXPECT_EQ(serial::serialize(got), serial::serialize(want));
}

TEST(Serial, GaloisKeysRoundTripIsBitExactInUse)
{
    CkksEnv& env = CkksEnv::shared();
    const Bytes bytes = serial::serialize(env.galois);
    const ckks::GaloisKeys back =
        serial::deserialize_galois_keys(bytes, env.ctx);
    EXPECT_EQ(back.keys.size(), env.galois.keys.size());
    EXPECT_EQ(serial::serialize(back), bytes);

    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(128, 1.0, 29), 4);
    ckks::Evaluator eval2(env.ctx, env.encoder);
    eval2.set_relin_key(&env.relin);
    eval2.set_galois_keys(&back);
    for (const int step : {1, 7, -3}) {
        const ckks::Ciphertext want = env.eval.rotate(ct, step);
        const ckks::Ciphertext got = eval2.rotate(ct, step);
        EXPECT_EQ(serial::serialize(got), serial::serialize(want));
    }
}

// ---------------------------------------------------------------------
// Seed-compressed keys (wire v3) and legacy v2 compatibility
// ---------------------------------------------------------------------

/** A key record in the legacy v2 layout (explicit interleaved digits). */
Bytes
encode_kswitch_v2(const ckks::KswitchKey& k)
{
    serial::ByteWriter w;
    serial::write_kswitch_key(w, k, /*version=*/2);
    return serial::finish_record(serial::RecordKind::kKswitchKey,
                                 std::move(w), /*version=*/2);
}

TEST(Serial, SeededKeysHalveTheWireSize)
{
    // Generator keys are seeded, so the v3 record carries {seed, b
    // digits} only — the acceptance bound is <= 60% of the explicit v2
    // encoding (the true ratio is just over half; the slack covers
    // headers).
    CkksEnv& env = CkksEnv::shared();
    ASSERT_TRUE(env.relin.seeded);
    const Bytes v3 = serial::serialize(env.relin);
    const Bytes v2 = encode_kswitch_v2(env.relin);
    EXPECT_LE(v3.size() * 10, v2.size() * 6)
        << "v3 " << v3.size() << " bytes vs v2 " << v2.size();

    serial::ByteWriter gw;
    serial::write_galois_keys(gw, env.galois, /*version=*/2);
    const Bytes galois_v2 = serial::finish_record(
        serial::RecordKind::kGaloisKeys, std::move(gw), /*version=*/2);
    const Bytes galois_v3 = serial::serialize(env.galois);
    EXPECT_LE(galois_v3.size() * 10, galois_v2.size() * 6);
}

TEST(Serial, SeededKeyRoundTripPreservesSeedAndExpansion)
{
    CkksEnv& env = CkksEnv::shared();
    const Bytes bytes = serial::serialize(env.relin);
    const ckks::KswitchKey back =
        serial::deserialize_kswitch_key(bytes, env.ctx);
    EXPECT_TRUE(back.seeded);
    EXPECT_EQ(back.a_seed, env.relin.a_seed);
    // The decoder re-expanded a from the seed: the expansion must match
    // the generator's, digit for digit, which the v2 encodings (explicit
    // residues for both components) compare bit-exactly.
    EXPECT_EQ(encode_kswitch_v2(back), encode_kswitch_v2(env.relin));
}

TEST(Serial, SeedExpansionIsFullySpecified)
{
    // The seed-to-residue mapping is wire contract: a client may encode a
    // v3 record under one standard library and the server decode it under
    // another, so the expansion must depend only on constructs the C++
    // standard pins down. std::mt19937_64 is fully specified;
    // std::uniform_int_distribution is NOT (libstdc++ and libc++
    // disagree), so expand_kswitch_a rejection-samples raw engine output.
    // This re-implements that specified algorithm independently and
    // checks every residue, guarding against any stdlib-dependent
    // primitive sneaking back into the expansion path.
    CkksEnv& env = CkksEnv::shared();
    const u64 seed = 0x5eedc0ffeeULL;
    const int level = env.ctx.max_level();
    const std::vector<ckks::RnsPoly> digits =
        ckks::expand_kswitch_a(env.ctx, seed, level);
    ASSERT_FALSE(digits.empty());

    std::mt19937_64 ref(seed);
    const auto next = [&ref](u64 q) {
        const u64 rem = (std::numeric_limits<u64>::max() % q + 1) % q;
        const u64 accept_max = std::numeric_limits<u64>::max() - rem;
        u64 r = ref();
        while (r > accept_max) r = ref();
        return r % q;
    };
    for (const ckks::RnsPoly& a : digits) {
        for (int i = 0; i < a.num_limbs(); ++i) {
            const u64 q = a.limb_modulus(i).value();
            const u64* limb = a.limb(i);
            for (u64 j = 0; j < env.ctx.degree(); ++j) {
                ASSERT_EQ(limb[j], next(q))
                    << "digit residue diverges at limb " << i
                    << " coefficient " << j;
            }
        }
    }
}

TEST(Serial, LegacyV2KeyRecordsStillDecode)
{
    CkksEnv& env = CkksEnv::shared();
    const Bytes v2 = encode_kswitch_v2(env.relin);
    const ckks::KswitchKey back =
        serial::deserialize_kswitch_key(v2, env.ctx);
    // v2 records carry no seed: the key decodes as explicit but is
    // otherwise identical, and re-encodes at v2 byte-identically.
    EXPECT_FALSE(back.seeded);
    EXPECT_EQ(back.num_digits(), env.relin.num_digits());
    EXPECT_EQ(back.level(), env.relin.level());
    EXPECT_EQ(encode_kswitch_v2(back), v2);
}

TEST(Serial, RejectsTruncatedSeededKeyRecord)
{
    CkksEnv& env = CkksEnv::shared();
    const Bytes bytes = serial::serialize(env.relin);
    // Cut inside the seed header (frame 14 + digits 8 + flag 1 leaves the
    // 8-byte seed and 4-byte level) and inside the b digits.
    for (const std::size_t keep :
         {std::size_t(14 + 8 + 1 + 4), bytes.size() / 2,
          bytes.size() - 1}) {
        const Bytes cut(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_THROW((void)serial::deserialize_kswitch_key(cut, env.ctx),
                     Error)
            << "keep=" << keep;
    }
}

TEST(Serial, RejectsSeededKeyWithBadLevel)
{
    CkksEnv& env = CkksEnv::shared();
    Bytes bytes = serial::serialize(env.relin);
    // The seeded header is digits (8) + flag (1) + seed (8) + level (4)
    // after the 14-byte frame; patch the level above the chain.
    bytes[14 + 8 + 1 + 8] = 99;
    expect_throw_contains<Error>(
        [&] { (void)serial::deserialize_kswitch_key(bytes, env.ctx); },
        "level");
}

// ---------------------------------------------------------------------
// Adversarial decodes: malformed bytes produce clean errors, never UB
// ---------------------------------------------------------------------

Bytes
sample_ciphertext_bytes()
{
    CkksEnv& env = CkksEnv::shared();
    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(32, 1.0, 31), 2);
    return serial::serialize(ct);
}

TEST(Serial, RejectsBadMagic)
{
    Bytes bytes = sample_ciphertext_bytes();
    bytes[0] = 'X';
    EXPECT_THROW(
        serial::deserialize_ciphertext(bytes, CkksEnv::shared().ctx),
        Error);
}

TEST(Serial, RejectsBadVersion)
{
    Bytes bytes = sample_ciphertext_bytes();
    bytes[4] = 0x7F;  // version byte
    EXPECT_THROW(
        serial::deserialize_ciphertext(bytes, CkksEnv::shared().ctx),
        Error);
}

TEST(Serial, RejectsWrongKind)
{
    const Bytes bytes = sample_ciphertext_bytes();
    // Valid ciphertext record handed to the poly decoder.
    EXPECT_THROW(serial::deserialize_poly(bytes, CkksEnv::shared().ctx),
                 Error);
}

TEST(Serial, RejectsTruncatedPayload)
{
    const Bytes bytes = sample_ciphertext_bytes();
    // Cut at several depths: inside the header, inside the first poly,
    // and one byte short of complete.
    for (const std::size_t keep :
         {std::size_t(3), std::size_t(13), std::size_t(40),
          bytes.size() / 2, bytes.size() - 1}) {
        const Bytes cut(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_THROW(
            serial::deserialize_ciphertext(cut, CkksEnv::shared().ctx),
            Error)
            << "keep=" << keep;
    }
}

TEST(Serial, RejectsOversizedLengthPrefix)
{
    Bytes bytes = sample_ciphertext_bytes();
    // The payload length lives at offset 6..13; claim more than present.
    bytes[6] = 0xFF;
    bytes[7] = 0xFF;
    EXPECT_THROW(
        serial::deserialize_ciphertext(bytes, CkksEnv::shared().ctx),
        Error);
}

TEST(Serial, RejectsUndersizedLengthPrefix)
{
    Bytes bytes = sample_ciphertext_bytes();
    bytes[6] = 0x01;  // claim a tiny payload; actual bytes remain
    for (int i = 7; i < 14; ++i) bytes[static_cast<std::size_t>(i)] = 0;
    EXPECT_THROW(
        serial::deserialize_ciphertext(bytes, CkksEnv::shared().ctx),
        Error);
}

TEST(Serial, RejectsOutOfRangeResidue)
{
    Bytes bytes = sample_ciphertext_bytes();
    // First residue of c0's limb 0: frame (14) + scale (8) + poly header
    // (1 + 1 + 4 + 8). Patch to 2^64 - 1, far above any 61-bit modulus.
    const std::size_t offset = 14 + 8 + 14;
    for (std::size_t i = 0; i < 8; ++i) bytes[offset + i] = 0xFF;
    EXPECT_THROW(
        serial::deserialize_ciphertext(bytes, CkksEnv::shared().ctx),
        Error);
}

TEST(Serial, RejectsLevelAboveContext)
{
    Bytes bytes = sample_ciphertext_bytes();
    // The c0 poly's level field: frame (14) + scale (8) + flags (2).
    bytes[14 + 8 + 2] = 99;
    EXPECT_THROW(
        serial::deserialize_ciphertext(bytes, CkksEnv::shared().ctx),
        Error);
}

TEST(Serial, LevelPrunedKswitchKeyRoundTripsAndIsLevelChecked)
{
    // Keys may be level-pruned (one digit covering level 0 here); the
    // decoder accepts internally-consistent keys and the key switcher
    // range-checks the level at use, so a hostile short key can never be
    // read out of bounds.
    CkksEnv& env = CkksEnv::shared();
    const ckks::KswitchKey pruned =
        env.keygen.make_galois_key(env.ctx.galois_elt(1), /*level=*/0);
    const Bytes bytes = serial::serialize(pruned);
    const ckks::KswitchKey back =
        serial::deserialize_kswitch_key(bytes, env.ctx);
    EXPECT_EQ(back.level(), 0);
    EXPECT_EQ(back.num_digits(), pruned.num_digits());

    ckks::GaloisKeys keys;
    keys.keys.emplace(env.ctx.galois_elt(1), back);
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);
    const ckks::Plaintext pt = env.encoder.encode(
        std::vector<double>{1.0, 2.0}, /*level=*/2, env.ctx.scale());
    const ckks::Ciphertext high = env.encryptor.encrypt(pt);
    expect_throw_contains<Error>([&] { (void)eval.rotate(high, 1); },
                                 "pruned to level");
}

TEST(Serial, RejectsKswitchKeyWithInconsistentDigits)
{
    // A key's digit count must cover exactly its level: a single level-2
    // digit (toy alpha = 3 needs one digit per 3 limbs, so level 5 needs
    // 2) must be rejected, as must digits at disagreeing levels.
    CkksEnv& env = CkksEnv::shared();
    ckks::KswitchKey bad;
    bad.b.emplace_back(env.ctx, /*level=*/5, /*extended=*/true,
                       /*ntt_form=*/true);
    bad.a.emplace_back(env.ctx, /*level=*/5, /*extended=*/true,
                       /*ntt_form=*/true);
    const Bytes bytes = serial::serialize(bad);
    expect_throw_contains<Error>(
        [&] { (void)serial::deserialize_kswitch_key(bytes, env.ctx); },
        "digits do not cover");
}

TEST(Serial, RejectsForeignContext)
{
    const Bytes bytes = sample_ciphertext_bytes();
    ckks::CkksParams other = ckks::CkksParams::toy();
    other.poly_degree = u64(1) << 12;
    const ckks::Context other_ctx(other);
    EXPECT_THROW(serial::deserialize_ciphertext(bytes, other_ctx), Error);
}

TEST(Serial, RejectsEmptyAndTinyBuffers)
{
    const Bytes empty;
    EXPECT_THROW(
        serial::deserialize_ciphertext(empty, CkksEnv::shared().ctx),
        Error);
    const Bytes tiny = {'O', 'R', 'N', '1'};
    EXPECT_THROW(serial::deserialize_ciphertext(tiny, CkksEnv::shared().ctx),
                 Error);
}

}  // namespace
}  // namespace orion::test
