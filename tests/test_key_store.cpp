#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/ckks/serial.h"
#include "src/serve/key_store.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using serve::KeyStore;
using serve::KeyStoreStats;

/** One set of toy evaluation keys, shared (copied) across entries. */
struct KeyFixture {
    ckks::KswitchKey relin;
    ckks::GaloisKeys galois;
    std::size_t bytes = 0;  ///< expanded size of one (relin, galois) pair

    KeyFixture()
    {
        CkksEnv& env = CkksEnv::shared();
        ckks::KeyGenerator keygen(env.ctx, /*seed=*/21);
        relin = keygen.make_relin_key();
        const std::vector<int> steps = {1, 2};
        galois = keygen.make_galois_keys(std::span<const int>(steps));
        bytes = relin.byte_size() + galois.byte_size();
    }

    static KeyFixture&
    shared()
    {
        static KeyFixture f;
        return f;
    }

    void
    put(KeyStore& store, u64 id) const
    {
        store.put(id, relin, galois);
    }
};

TEST(KeyStore, UnboundedStoreKeepsEverythingResident)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    KeyStore store(env.ctx, /*cache_bytes=*/0);

    keys.put(store, 1);
    keys.put(store, 2);
    EXPECT_TRUE(store.resident(1));
    EXPECT_TRUE(store.resident(2));

    KeyStore::Lease lease = store.acquire(1);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_TRUE(lease.relin().valid());

    const KeyStoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.resident_sessions, 2u);
    EXPECT_EQ(s.resident_bytes, 2 * keys.bytes);
    EXPECT_EQ(s.disk_bytes, 0u);  // unbounded stores never spill
}

TEST(KeyStore, AcquireUnknownIdReturnsEmptyLease)
{
    CkksEnv& env = CkksEnv::shared();
    KeyStore store(env.ctx, /*cache_bytes=*/0);
    KeyStore::Lease lease = store.acquire(99);
    EXPECT_FALSE(static_cast<bool>(lease));
    EXPECT_FALSE(store.erase(99));
}

TEST(KeyStore, LruEvictionOrderAndCounters)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    // Room for exactly two entries.
    KeyStore store(env.ctx, 2 * keys.bytes);

    keys.put(store, 1);
    keys.put(store, 2);
    keys.put(store, 3);  // over budget: evicts 1 (least recently used)
    EXPECT_FALSE(store.resident(1));
    EXPECT_TRUE(store.resident(2));
    EXPECT_TRUE(store.resident(3));
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_LE(store.stats().resident_bytes, 2 * keys.bytes);

    // Touch 2 so 3 becomes the LRU, then reload 1: the reload evicts 3.
    store.acquire(2);
    {
        KeyStore::Lease lease = store.acquire(1);
        ASSERT_TRUE(static_cast<bool>(lease));
        EXPECT_TRUE(lease.relin().valid());
    }
    EXPECT_TRUE(store.resident(1));
    EXPECT_TRUE(store.resident(2));
    EXPECT_FALSE(store.resident(3));

    const KeyStoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);    // the touch of 2
    EXPECT_EQ(s.misses, 1u);  // the reload of 1
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.resident_sessions, 2u);
    EXPECT_LE(s.resident_bytes, 2 * keys.bytes);
    EXPECT_GT(s.disk_bytes, 0u);
}

TEST(KeyStore, PinnedLeaseIsNeverEvicted)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    // Room for exactly one entry.
    KeyStore store(env.ctx, keys.bytes);

    keys.put(store, 1);
    KeyStore::Lease lease = store.acquire(1);
    ASSERT_TRUE(static_cast<bool>(lease));

    // 2 pushes the store over budget, but 1 is pinned: 2 itself (the
    // only unpinned entry) gets evicted instead.
    keys.put(store, 2);
    EXPECT_TRUE(store.resident(1));
    EXPECT_FALSE(store.resident(2));
    EXPECT_TRUE(lease.relin().valid());
    EXPECT_FALSE(lease.galois().keys.empty());

    // Once the pin drops, 1 is fair game again: loading 2 evicts it.
    lease.reset();
    KeyStore::Lease lease2 = store.acquire(2);
    ASSERT_TRUE(static_cast<bool>(lease2));
    EXPECT_FALSE(store.resident(1));
    EXPECT_TRUE(store.resident(2));
}

TEST(KeyStore, SpillReloadIsBitExact)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    const ckks::serial::Bytes relin_bytes =
        ckks::serial::serialize(keys.relin);
    const ckks::serial::Bytes galois_bytes =
        ckks::serial::serialize(keys.galois);

    KeyStore store(env.ctx, keys.bytes);
    keys.put(store, 1);
    keys.put(store, 2);  // evicts 1
    ASSERT_FALSE(store.resident(1));

    // The reload re-expands seeded a-digits from their seeds; the result
    // must serialize back to byte-identical records.
    KeyStore::Lease lease = store.acquire(1);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_EQ(ckks::serial::serialize(lease.relin()), relin_bytes);
    EXPECT_EQ(ckks::serial::serialize(lease.galois()), galois_bytes);
}

TEST(KeyStore, EraseIsIdempotentAndHonorsOutstandingLeases)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    KeyStore store(env.ctx, 4 * keys.bytes);

    keys.put(store, 1);
    KeyStore::Lease lease = store.acquire(1);
    ASSERT_TRUE(static_cast<bool>(lease));

    EXPECT_TRUE(store.erase(1));
    EXPECT_FALSE(store.erase(1));  // idempotent
    EXPECT_FALSE(store.resident(1));
    EXPECT_FALSE(static_cast<bool>(store.acquire(1)));

    // The outstanding lease still sees valid keys (the in-flight-request
    // guarantee). At erase the bytes leave both resident gauges together
    // and sit in the zombie gauge until the pin drops.
    EXPECT_TRUE(lease.relin().valid());
    EXPECT_EQ(store.stats().resident_bytes, 0u);
    EXPECT_EQ(store.stats().resident_sessions, 0u);
    EXPECT_EQ(store.stats().zombie_bytes, keys.bytes);
    lease.reset();
    EXPECT_EQ(store.stats().zombie_bytes, 0u);
    EXPECT_EQ(store.stats().resident_bytes, 0u);
}

TEST(KeyStore, ErasedPinnedBytesDoNotEvictLiveSessions)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    // Room for exactly one entry.
    KeyStore store(env.ctx, keys.bytes);

    keys.put(store, 1);
    KeyStore::Lease lease = store.acquire(1);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_TRUE(store.erase(1));

    // 1's bytes are zombie (kept alive only for the lease) and excluded
    // from the eviction budget, so registering 2 keeps it resident
    // instead of evicting the only live session.
    keys.put(store, 2);
    EXPECT_TRUE(store.resident(2));
    const KeyStoreStats s = store.stats();
    EXPECT_EQ(s.zombie_bytes, keys.bytes);
    EXPECT_EQ(s.resident_bytes, keys.bytes);
    EXPECT_EQ(s.resident_sessions, 1u);
    EXPECT_EQ(s.evictions, 0u);

    lease.reset();
    EXPECT_EQ(store.stats().zombie_bytes, 0u);
    EXPECT_TRUE(store.resident(2));
}

TEST(KeyStore, PrefetchWarmsEvictedEntries)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    KeyStore store(env.ctx, keys.bytes);

    keys.put(store, 1);
    keys.put(store, 2);  // evicts 1
    ASSERT_FALSE(store.resident(1));

    // 2 is now the LRU; the background load of 1 evicts it.
    store.prefetch(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!store.resident(1) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(store.resident(1));

    const KeyStoreStats before = store.stats();
    EXPECT_EQ(before.prefetches, 1u);
    EXPECT_EQ(before.misses, 0u);  // background loads are not misses

    // The foreground acquire finds the warmed entry: a hit, not a miss.
    KeyStore::Lease lease = store.acquire(1);
    ASSERT_TRUE(static_cast<bool>(lease));
    const KeyStoreStats after = store.stats();
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.misses, before.misses);
}

TEST(KeyStore, PrefetchDropsResidentUnknownAndDuplicateHints)
{
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    KeyStore store(env.ctx, keys.bytes);

    keys.put(store, 1);
    keys.put(store, 2);  // evicts 1
    ASSERT_FALSE(store.resident(1));

    // Useless hints are dropped at enqueue time, so the loader thread
    // only ever sees the one cold entry.
    store.prefetch(2);   // resident: dropped
    store.prefetch(99);  // unknown id: dropped
    store.prefetch(1);   // cold: queued
    store.prefetch(1);   // duplicate (queued or already loading): dropped

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!store.resident(1) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(store.resident(1));
    EXPECT_EQ(store.stats().prefetches, 1u);
}

TEST(KeyStore, ConcurrentAcquireReleaseChurn)
{
    // Hammer one undersized store from several threads: every acquire
    // must produce valid keys (loads shared, pins respected) and the
    // resident bound must hold whenever no lease is outstanding.
    CkksEnv& env = CkksEnv::shared();
    KeyFixture& keys = KeyFixture::shared();
    KeyStore store(env.ctx, 2 * keys.bytes);
    for (u64 id = 1; id <= 4; ++id) keys.put(store, id);

    constexpr int kThreads = 4;
    constexpr int kIters = 8;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const u64 id = 1 + static_cast<u64>((t + i) % 4);
                KeyStore::Lease lease = store.acquire(id);
                if (!lease || !lease.relin().valid()) failures += 1;
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);

    const KeyStoreStats s = store.stats();
    EXPECT_EQ(s.hits + s.misses,
              static_cast<u64>(kThreads) * kIters);
    EXPECT_LE(s.resident_bytes, 2 * keys.bytes);
}

}  // namespace
}  // namespace orion::test
