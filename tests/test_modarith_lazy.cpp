/**
 * @file
 * Lazy (deferred-reduction) kernel validation: every lazy primitive in
 * modarith.h is cross-checked against the plain mul_mod/add_mod reference
 * on random and adversarial inputs, the Harvey NTT is cross-checked
 * against the eager per-op-reduction formulation it replaced, the fused
 * u128 key-switch inner product is cross-checked against the per-term
 * mul_mod/add_mod loop, and the end-to-end kernels are swept across
 * 1/2/4 threads for bit-identity.
 */

#include <gtest/gtest.h>

#include <random>

#include "src/ckks/ckks.h"
#include "src/core/thread_pool.h"

namespace orion::ckks {
namespace {

/** Moduli spanning the supported range, including q just below 2^61. */
std::vector<u64>
test_moduli()
{
    std::vector<u64> moduli;
    for (int bits : {30, 45, 55, 61}) {
        moduli.push_back(generate_ntt_primes(bits, 1, 1 << 10)[0]);
    }
    return moduli;
}

/** Residues at the edges of every lazy range for modulus q. */
std::vector<u64>
adversarial_residues(u64 q)
{
    return {0, 1, q - 1, q, 2 * q - 1, 2 * q, 4 * q - 2, 4 * q - 1};
}

TEST(ModArithLazy, MulShoupLazyMatchesReference)
{
    std::mt19937_64 rng(11);
    for (u64 q_val : test_moduli()) {
        const Modulus q(q_val);
        std::uniform_int_distribution<u64> any(0, 4 * q_val - 1);
        std::uniform_int_distribution<u64> reduced(0, q_val - 1);
        std::vector<u64> lhs = adversarial_residues(q_val);
        for (int i = 0; i < 200; ++i) lhs.push_back(any(rng));
        for (u64 a : lhs) {
            const u64 w = reduced(rng);
            const u64 ws = shoup_precompute(w, q);
            const u64 lazy = mul_mod_shoup_lazy(a, w, ws, q);
            EXPECT_LT(lazy, 2 * q_val);
            // Same residue as the plain reference on the reduced input.
            EXPECT_EQ(lazy % q_val, mul_mod(q.reduce(a), w, q));
            // And normalizing recovers the canonical eager result.
            EXPECT_EQ(normalize_lazy(lazy, q),
                      mul_mod_shoup(q.reduce(a), w, ws, q));
        }
    }
}

TEST(ModArithLazy, AddSubLazyMatchReference)
{
    std::mt19937_64 rng(12);
    for (u64 q_val : test_moduli()) {
        const Modulus q(q_val);
        std::uniform_int_distribution<u64> any(0, 4 * q_val - 1);
        std::vector<u64> edge = adversarial_residues(q_val);
        for (int i = 0; i < 200; ++i) {
            edge.push_back(any(rng));
        }
        for (u64 a : edge) {
            for (u64 b : adversarial_residues(q_val)) {
                const u64 s = add_lazy(a, b, q);
                const u64 d = sub_lazy(a, b, q);
                EXPECT_LT(s, 4 * q_val);
                EXPECT_LT(d, 4 * q_val);
                EXPECT_EQ(s % q_val, add_mod(q.reduce(a), q.reduce(b), q));
                EXPECT_EQ(d % q_val, sub_mod(q.reduce(a), q.reduce(b), q));
            }
        }
    }
}

TEST(ModArithLazy, NormalizePass)
{
    std::mt19937_64 rng(13);
    for (u64 q_val : test_moduli()) {
        const Modulus q(q_val);
        std::uniform_int_distribution<u64> any(0, 4 * q_val - 1);
        std::vector<u64> vals = adversarial_residues(q_val);
        for (int i = 0; i < 500; ++i) vals.push_back(any(rng));
        std::vector<u64> expected(vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i) {
            expected[i] = vals[i] % q_val;
        }
        normalize_lazy(vals.data(), vals.size(), q);
        EXPECT_EQ(vals, expected);
    }
}

TEST(ModArithLazy, ModulusRejectsLazyOverflowRange)
{
    // The [0, 4q) arithmetic needs q < 2^61; anything at or above must be
    // rejected at construction (the old bound was 2^62).
    EXPECT_THROW(Modulus(u64(1) << 61), Error);
    EXPECT_THROW(Modulus((u64(1) << 61) + 1), Error);
    EXPECT_NO_THROW(Modulus((u64(1) << 61) - 1));
}

/** The eager pre-lazy NTT kernels, kept verbatim as the reference. */
void
reference_forward(const NttTables& t, const std::vector<u64>& roots,
                  const std::vector<u64>& roots_shoup, u64* a)
{
    const Modulus& q = t.modulus();
    const u64 n = t.degree();
    u64 span = n;
    for (u64 m = 1; m < n; m <<= 1) {
        span >>= 1;
        for (u64 i = 0; i < m; ++i) {
            const u64 w = roots[m + i];
            const u64 ws = roots_shoup[m + i];
            u64* x = a + 2 * i * span;
            u64* y = x + span;
            for (u64 j = 0; j < span; ++j) {
                const u64 u = x[j];
                const u64 v = mul_mod_shoup(y[j], w, ws, q);
                x[j] = add_mod(u, v, q);
                y[j] = sub_mod(u, v, q);
            }
        }
    }
}

TEST(ModArithLazy, HarveyNttBitIdenticalToEagerReference)
{
    for (u64 n : {u64(8), u64(256), u64(2048)}) {
        const Modulus q(generate_ntt_primes(59, 1, n)[0]);
        const NttTables tables(n, q);

        // Rebuild the twiddle tables exactly as NttTables does.
        const u64 psi = find_primitive_root(n, q);
        std::vector<u64> roots(n), roots_shoup(n);
        u64 power = 1;
        const int log_n = log2_exact(n);
        for (u64 i = 0; i < n; ++i) {
            const u32 rev = reverse_bits(static_cast<u32>(i), log_n);
            roots[rev] = power;
            roots_shoup[rev] = shoup_precompute(power, q);
            power = mul_mod(power, psi, q);
        }

        std::mt19937_64 rng(100 + n);
        std::uniform_int_distribution<u64> dist(0, q.value() - 1);
        std::vector<u64> a(n);
        for (u64& x : a) x = dist(rng);

        std::vector<u64> lazy = a;
        std::vector<u64> eager = a;
        tables.forward(lazy.data());
        reference_forward(tables, roots, roots_shoup, eager.data());
        EXPECT_EQ(lazy, eager) << "forward NTT diverged at n=" << n;

        // Inverse: the lazy kernel (with the fused 1/N last stage) must
        // invert the forward transform exactly.
        tables.inverse(lazy.data());
        EXPECT_EQ(lazy, a) << "inverse NTT roundtrip failed at n=" << n;
    }
}

TEST(ModArithLazy, InnerProductMatchesPerTermReference)
{
    CkksParams params = CkksParams::toy();
    const Context ctx(params);
    Encoder enc(ctx);
    KeyGenerator keygen(ctx, 7);
    const PublicKey pk = keygen.make_public_key();
    const KswitchKey relin = keygen.make_relin_key();
    Encryptor encryptor(ctx, pk);
    const KeySwitcher switcher(ctx);

    const int level = ctx.max_level();
    const Plaintext pt = enc.encode(
        std::vector<double>(ctx.slot_count(), 0.25), level, ctx.scale());
    const Ciphertext ct = encryptor.encrypt(pt);
    const std::vector<RnsPoly> digits = switcher.decompose(ct.c1);

    // Start from a nonzero carried-in accumulator (the double-hoisting
    // case) to cover the partial-sum path.
    RnsPoly acc0(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    RnsPoly acc1(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    switcher.inner_product(digits, relin, &acc0, &acc1);
    RnsPoly ref0 = acc0;
    RnsPoly ref1 = acc1;
    switcher.inner_product(digits, relin, &acc0, &acc1);

    // Per-term mul_mod + add_mod reference on top of the first result.
    const u64 n = ctx.degree();
    for (int t = 0; t < ref0.num_limbs(); ++t) {
        const int key_t = ref0.limb_global_index(t);
        const Modulus& q = ref0.limb_modulus(t);
        u64* o0 = ref0.limb(t);
        u64* o1 = ref1.limb(t);
        for (std::size_t d = 0; d < digits.size(); ++d) {
            const u64* x = digits[d].limb(t);
            const u64* b = relin.b[d].limb(key_t);
            const u64* a = relin.a[d].limb(key_t);
            for (u64 j = 0; j < n; ++j) {
                o0[j] = add_mod(o0[j], mul_mod(x[j], b[j], q), q);
                o1[j] = add_mod(o1[j], mul_mod(x[j], a[j], q), q);
            }
        }
    }
    for (int t = 0; t < ref0.num_limbs(); ++t) {
        for (u64 j = 0; j < n; ++j) {
            ASSERT_EQ(acc0.limb(t)[j], ref0.limb(t)[j])
                << "acc0 limb " << t << " coeff " << j;
            ASSERT_EQ(acc1.limb(t)[j], ref1.limb(t)[j])
                << "acc1 limb " << t << " coeff " << j;
        }
    }
}

/** Flattens a ciphertext's raw RNS words for exact comparison. */
std::vector<u64>
raw_words(const Ciphertext& ct)
{
    std::vector<u64> words;
    for (const RnsPoly* p : {&ct.c0, &ct.c1}) {
        for (int i = 0; i < p->num_limbs(); ++i) {
            words.insert(words.end(), p->limb(i),
                         p->limb(i) + p->degree());
        }
    }
    return words;
}

TEST(ModArithLazy, KernelsBitIdenticalAcrossThreadCounts)
{
    CkksParams params = CkksParams::toy();
    const Context ctx(params);
    Encoder enc(ctx);
    KeyGenerator keygen(ctx, 7);
    const PublicKey pk = keygen.make_public_key();
    GaloisKeys galois =
        keygen.make_galois_keys(std::vector<int>{1, 2, 5, 8});
    Encryptor encryptor(ctx, pk);
    Evaluator eval(ctx, enc);
    eval.set_galois_keys(&galois);

    std::vector<double> msg(ctx.slot_count());
    for (std::size_t i = 0; i < msg.size(); ++i) {
        msg[i] = 0.001 * static_cast<double>(i % 97) - 0.05;
    }

    // Encrypt ONCE (encryption draws from a stateful RNG stream, so it is
    // deliberately outside the sweep), then push the same ciphertext
    // through every overhauled deterministic kernel at each thread count:
    // encode (parallel FFT + limb reduction), NTT, rotation accumulation
    // with per-thread partial accumulators (4 giant steps), and the fused
    // key-switch inner product underneath each rotation.
    const int level = ctx.max_level();
    const Ciphertext ct =
        encryptor.encrypt(enc.encode(msg, level, ctx.scale()));

    auto run_pipeline = [&]() {
        const Plaintext pt = enc.encode(msg, level, ctx.scale());
        Ciphertext sum = ct;
        eval.add_plain_inplace(sum, pt);
        auto acc = eval.make_accumulator(level, sum.scale);
        for (int step : {1, 2, 5, 8}) {
            eval.accumulate_rotation(acc, sum, step);
        }
        return eval.finalize_accumulator(acc);
    };

    std::vector<u64> reference;
    for (int threads : {1, 2, 4}) {
        const core::ScopedNumThreads scoped(threads);
        const std::vector<u64> words = raw_words(run_pipeline());
        if (threads == 1) {
            reference = words;
        } else {
            ASSERT_EQ(words, reference)
                << "pipeline diverged at " << threads << " threads";
        }
    }
}

}  // namespace
}  // namespace orion::ckks
