#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace orion::test {
namespace {

using ckks::Plaintext;

TEST(Encoder, RealRoundTrip)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> m = random_vector(env.ctx.slot_count(), 1.0, 1);
    const Plaintext pt = env.encoder.encode(m, env.ctx.max_level(),
                                            env.ctx.scale());
    const std::vector<double> back = env.encoder.decode(pt);
    EXPECT_LT(max_abs_diff(m, back), 1e-6);
}

TEST(Encoder, ComplexRoundTrip)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    std::vector<std::complex<double>> m(n);
    const std::vector<double> re = random_vector(n, 1.0, 2);
    const std::vector<double> im = random_vector(n, 1.0, 3);
    for (u64 i = 0; i < n; ++i) m[i] = {re[i], im[i]};
    const Plaintext pt =
        env.encoder.encode_complex(m, env.ctx.max_level(), env.ctx.scale());
    const std::vector<std::complex<double>> back =
        env.encoder.decode_complex(pt);
    double err = 0;
    for (u64 i = 0; i < n; ++i) err = std::max(err, std::abs(back[i] - m[i]));
    EXPECT_LT(err, 1e-6);
}

TEST(Encoder, ShortInputIsZeroPadded)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> m = {1.0, -2.0, 3.0};
    const Plaintext pt = env.encoder.encode(m, 2, env.ctx.scale());
    const std::vector<double> back = env.encoder.decode(pt);
    EXPECT_NEAR(back[0], 1.0, 1e-6);
    EXPECT_NEAR(back[1], -2.0, 1e-6);
    EXPECT_NEAR(back[2], 3.0, 1e-6);
    for (std::size_t i = 3; i < back.size(); ++i) {
        EXPECT_NEAR(back[i], 0.0, 1e-6);
    }
}

TEST(Encoder, AdditiveHomomorphism)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 4);
    const std::vector<double> b = random_vector(n, 1.0, 5);
    Plaintext pa = env.encoder.encode(a, 3, env.ctx.scale());
    const Plaintext pb = env.encoder.encode(b, 3, env.ctx.scale());
    pa.poly.add_inplace(pb.poly);
    const std::vector<double> sum = env.encoder.decode(pa);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(sum[i], a[i] + b[i], 1e-5);
}

TEST(Encoder, PolynomialProductIsSlotwiseProduct)
{
    // Multiplying the underlying ring elements must multiply slots (the
    // SIMD property of Section 2.1).
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 6);
    const std::vector<double> b = random_vector(n, 1.0, 7);
    Plaintext pa = env.encoder.encode(a, 3, env.ctx.scale());
    const Plaintext pb = env.encoder.encode(b, 3, env.ctx.scale());
    pa.poly.mul_pointwise_inplace(pb.poly);
    pa.scale *= pb.scale;
    const std::vector<double> prod = env.encoder.decode(pa);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(prod[i], a[i] * b[i], 1e-4);
}

TEST(Encoder, GaloisElementRotatesSlots)
{
    // The automorphism X -> X^{5^k} must rotate slots by k (Section 2.5.3):
    // slot i of the result holds slot i+k of the input.
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 8);
    for (int step : {1, 3, 7}) {
        Plaintext pa = env.encoder.encode(a, 2, env.ctx.scale());
        pa.poly = pa.poly.galois(env.ctx.galois_elt(step));
        const std::vector<double> rot = env.encoder.decode(pa);
        for (u64 i = 0; i < n; ++i) {
            EXPECT_NEAR(rot[i], a[(i + static_cast<u64>(step)) % n], 1e-5)
                << "step " << step << " slot " << i;
        }
    }
}

TEST(Encoder, ConjugationElementConjugatesSlots)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    std::vector<std::complex<double>> m(n);
    for (u64 i = 0; i < n; ++i) {
        m[i] = {std::sin(0.1 * static_cast<double>(i)),
                std::cos(0.3 * static_cast<double>(i))};
    }
    Plaintext pt = env.encoder.encode_complex(m, 2, env.ctx.scale());
    pt.poly = pt.poly.galois(env.ctx.galois_elt_conj());
    const std::vector<std::complex<double>> back =
        env.encoder.decode_complex(pt);
    double err = 0;
    for (u64 i = 0; i < n; ++i) {
        err = std::max(err, std::abs(back[i] - std::conj(m[i])));
    }
    EXPECT_LT(err, 1e-5);
}

TEST(Encoder, GaloisNttMatchesCoeffForm)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 9);
    const Plaintext pt = env.encoder.encode(a, 3, env.ctx.scale());
    for (int step : {1, 5, -3}) {
        const u64 elt = env.ctx.galois_elt(step);
        const ckks::RnsPoly via_ntt = pt.poly.galois(elt);  // NTT path
        ckks::RnsPoly coeff = pt.poly;
        coeff.to_coeff();
        ckks::RnsPoly via_coeff = coeff.galois(elt);
        via_coeff.to_ntt();
        for (int i = 0; i < via_ntt.num_limbs(); ++i) {
            for (u64 j = 0; j < env.ctx.degree(); ++j) {
                ASSERT_EQ(via_ntt.limb(i)[j], via_coeff.limb(i)[j])
                    << "step " << step << " limb " << i << " coeff " << j;
            }
        }
    }
}

TEST(Encoder, ConstantEncodeMatchesVectorEncode)
{
    CkksEnv& env = CkksEnv::shared();
    const Plaintext fast = env.encoder.encode_constant(0.37, 2,
                                                       env.ctx.scale());
    const std::vector<double> decoded = env.encoder.decode(fast);
    for (double v : decoded) EXPECT_NEAR(v, 0.37, 1e-6);
}

TEST(Encoder, EncodeAtPrimeScale)
{
    // The errorless scale trick encodes weights at scale q_j; the encoder
    // must round-trip at non-power-of-two scales too.
    CkksEnv& env = CkksEnv::shared();
    const double qj = static_cast<double>(env.ctx.q(2).value());
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 10);
    const Plaintext pt = env.encoder.encode(a, 3, qj);
    const std::vector<double> back = env.encoder.decode(pt);
    EXPECT_LT(max_abs_diff(a, back), 1e-6);
}

TEST(Encoder, RejectsOversizedInput)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> big(env.ctx.slot_count() + 1, 1.0);
    EXPECT_THROW(env.encoder.encode(big, 2, env.ctx.scale()), Error);
}

}  // namespace
}  // namespace orion::test
