#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace orion::test {
namespace {

using ckks::Ciphertext;
using ckks::Plaintext;

TEST(Encrypt, PublicKeyRoundTrip)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> m = random_vector(env.ctx.slot_count(), 1.0, 1);
    const Ciphertext ct = encrypt_vector(env, m, env.ctx.max_level());
    const std::vector<double> back = decrypt_vector(env, ct);
    EXPECT_LT(max_abs_diff(m, back), 1e-4);
}

TEST(Encrypt, SymmetricRoundTrip)
{
    CkksEnv& env = CkksEnv::shared();
    ckks::Encryptor sym(env.ctx, env.keygen.secret_key());
    const std::vector<double> m = random_vector(env.ctx.slot_count(), 1.0, 2);
    const Plaintext pt = env.encoder.encode(m, 3, env.ctx.scale());
    const Ciphertext ct = sym.encrypt(pt);
    const std::vector<double> back = decrypt_vector(env, ct);
    EXPECT_LT(max_abs_diff(m, back), 1e-5);
}

TEST(Encrypt, LowerLevelEncryption)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> m = random_vector(env.ctx.slot_count(), 1.0, 3);
    for (int level : {0, 1, 2}) {
        const Ciphertext ct = encrypt_vector(env, m, level);
        EXPECT_EQ(ct.level(), level);
        EXPECT_LT(max_abs_diff(m, decrypt_vector(env, ct)), 1e-4);
    }
}

TEST(Evaluator, AddAndSub)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 4);
    const std::vector<double> b = random_vector(n, 1.0, 5);
    Ciphertext ca = encrypt_vector(env, a, 3);
    const Ciphertext cb = encrypt_vector(env, b, 3);
    env.eval.add_inplace(ca, cb);
    std::vector<double> sum = decrypt_vector(env, ca);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(sum[i], a[i] + b[i], 1e-4);
    env.eval.sub_inplace(ca, cb);
    std::vector<double> diff = decrypt_vector(env, ca);
    EXPECT_LT(max_abs_diff(diff, a), 1e-4);
}

TEST(Evaluator, AddPlainAndConstant)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 6);
    const std::vector<double> b = random_vector(n, 1.0, 7);
    Ciphertext ca = encrypt_vector(env, a, 2);
    const Plaintext pb = env.encoder.encode(b, 2, ca.scale);
    env.eval.add_plain_inplace(ca, pb);
    env.eval.add_constant_inplace(ca, 0.25);
    const std::vector<double> out = decrypt_vector(env, ca);
    for (u64 i = 0; i < n; ++i) {
        EXPECT_NEAR(out[i], a[i] + b[i] + 0.25, 1e-4);
    }
}

TEST(Evaluator, MulPlainWithRescale)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 8);
    const std::vector<double> w = random_vector(n, 1.0, 9);
    Ciphertext ca = encrypt_vector(env, a, 3);
    const Plaintext pw = env.encoder.encode(w, 3, env.ctx.scale());
    env.eval.mul_plain_inplace(ca, pw);
    env.eval.rescale_inplace(ca);
    EXPECT_EQ(ca.level(), 2);
    const std::vector<double> out = decrypt_vector(env, ca);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * w[i], 1e-4);
}

TEST(Evaluator, ErrorlessScaleTrick)
{
    // Encoding the weight at scale q_l makes the post-rescale scale exactly
    // Delta again (the paper's Figure 7 invariant).
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 10);
    const std::vector<double> w = random_vector(n, 1.0, 11);
    Ciphertext ca = encrypt_vector(env, a, 3);
    const double qj = static_cast<double>(env.ctx.q(3).value());
    const Plaintext pw = env.encoder.encode(w, 3, qj);
    env.eval.mul_plain_inplace(ca, pw);
    env.eval.rescale_inplace(ca);
    EXPECT_DOUBLE_EQ(ca.scale, env.ctx.scale());  // exact, not approximate
    const std::vector<double> out = decrypt_vector(env, ca);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * w[i], 1e-4);
}

TEST(Evaluator, CiphertextMultiply)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 12);
    const std::vector<double> b = random_vector(n, 1.0, 13);
    const Ciphertext ca = encrypt_vector(env, a, 3);
    const Ciphertext cb = encrypt_vector(env, b, 3);
    Ciphertext cc = env.eval.mul(ca, cb);
    env.eval.rescale_inplace(cc);
    const std::vector<double> out = decrypt_vector(env, cc);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * b[i], 1e-3);
}

TEST(Evaluator, SquareChain)
{
    // Consume several levels: ((a^2)^2) with rescaling after each square.
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 0.9, 14);
    Ciphertext ct = encrypt_vector(env, a, 4);
    ct = env.eval.square(ct);
    env.eval.rescale_inplace(ct);
    ct = env.eval.square(ct);
    env.eval.rescale_inplace(ct);
    EXPECT_EQ(ct.level(), 2);
    const std::vector<double> out = decrypt_vector(env, ct);
    for (u64 i = 0; i < n; ++i) {
        EXPECT_NEAR(out[i], std::pow(a[i], 4.0), 5e-3);
    }
}

TEST(Evaluator, RotationMatchesCleartext)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 15);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    for (int step : {1, 5, 16, -3}) {
        const Ciphertext rot = env.eval.rotate(ct, step);
        const std::vector<double> out = decrypt_vector(env, rot);
        for (u64 i = 0; i < n; ++i) {
            const u64 src =
                (i + static_cast<u64>(((step % static_cast<i64>(n)) +
                                       static_cast<i64>(n))) ) % n;
            ASSERT_NEAR(out[i], a[src], 1e-4) << "step " << step;
        }
    }
}

TEST(Evaluator, RotationByZeroIsIdentity)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 16);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    const Ciphertext rot = env.eval.rotate(ct, 0);
    EXPECT_EQ(max_abs_diff(decrypt_vector(env, rot),
                           decrypt_vector(env, ct)),
              0.0);
}

TEST(Evaluator, HoistedRotationMatchesPlainRotation)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 17);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    const ckks::Evaluator::Hoisted h = env.eval.hoist(ct);
    for (int step : {1, 4, 8, -1}) {
        const Ciphertext hr = env.eval.rotate_hoisted(h, step);
        const Ciphertext pr = env.eval.rotate(ct, step);
        EXPECT_LT(max_abs_diff(decrypt_vector(env, hr),
                               decrypt_vector(env, pr)),
                  1e-4)
            << "step " << step;
    }
}

TEST(Evaluator, RotationAccumulatorMatchesSumOfRotations)
{
    // The double-hoisting accumulator must equal sum_i Rot_{k_i}(ct_i).
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<int> steps = {0, 1, 5, 16, -3};
    std::vector<std::vector<double>> msgs;
    std::vector<Ciphertext> cts;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        msgs.push_back(random_vector(n, 1.0, 100 + i));
        cts.push_back(encrypt_vector(env, msgs.back(), 2));
    }

    auto acc = env.eval.make_accumulator(2, env.ctx.scale());
    for (std::size_t i = 0; i < steps.size(); ++i) {
        env.eval.accumulate_rotation(acc, cts[i], steps[i]);
    }
    const Ciphertext combined = env.eval.finalize_accumulator(acc);

    Ciphertext expected = env.eval.rotate(cts[0], steps[0]);
    for (std::size_t i = 1; i < steps.size(); ++i) {
        env.eval.add_inplace(expected, env.eval.rotate(cts[i], steps[i]));
    }
    EXPECT_LT(max_abs_diff(decrypt_vector(env, combined),
                           decrypt_vector(env, expected)),
              1e-4);
}

TEST(Evaluator, Conjugate)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    std::vector<std::complex<double>> m(n);
    for (u64 i = 0; i < n; ++i) {
        m[i] = {0.3 * std::cos(static_cast<double>(i)),
                0.2 * std::sin(static_cast<double>(i))};
    }
    const Plaintext pt = env.encoder.encode_complex(m, 2, env.ctx.scale());
    ckks::Encryptor sym(env.ctx, env.keygen.secret_key());
    const Ciphertext ct = sym.encrypt(pt);
    const Ciphertext conj = env.eval.conjugate(ct);
    const std::vector<std::complex<double>> out =
        env.encoder.decode_complex(env.decryptor.decrypt(conj));
    double err = 0;
    for (u64 i = 0; i < n; ++i) {
        err = std::max(err, std::abs(out[i] - std::conj(m[i])));
    }
    EXPECT_LT(err, 1e-4);
}

TEST(Evaluator, DropToLevelPreservesMessage)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 18);
    Ciphertext ct = encrypt_vector(env, a, 5);
    env.eval.drop_to_level_inplace(ct, 1);
    EXPECT_EQ(ct.level(), 1);
    EXPECT_DOUBLE_EQ(ct.scale, env.ctx.scale());
    EXPECT_LT(max_abs_diff(decrypt_vector(env, ct), a), 1e-4);
}

TEST(Evaluator, MulAtLowLevelAfterDrop)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 19);
    Ciphertext ct = encrypt_vector(env, a, 5);
    env.eval.drop_to_level_inplace(ct, 2);
    Ciphertext sq = env.eval.square(ct);
    env.eval.rescale_inplace(sq);
    const std::vector<double> out = decrypt_vector(env, sq);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * a[i], 1e-3);
}

TEST(Evaluator, MismatchedLevelsRejected)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 20);
    const Ciphertext c3 = encrypt_vector(env, a, 3);
    const Ciphertext c2 = encrypt_vector(env, a, 2);
    Ciphertext c3m = c3;
    EXPECT_THROW(env.eval.add_inplace(c3m, c2), Error);
}

TEST(Evaluator, MismatchedScalesRejected)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 21);
    Ciphertext c1 = encrypt_vector(env, a, 3);
    Ciphertext c2 = encrypt_vector(env, a, 3);
    c2.scale *= 2.0;
    EXPECT_THROW(env.eval.add_inplace(c1, c2), Error);
}

TEST(Evaluator, MissingGaloisKeyRejected)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 22);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    EXPECT_THROW(env.eval.rotate(ct, 123), Error);  // no key for step 123
}

TEST(Evaluator, HoistedRotationMatchesPlainRotationAllSharedSteps)
{
    // Full sweep: one hoisted decomposition must serve every step the
    // shared environment owns keys for, matching the un-hoisted rotation
    // both in the decrypted slots and in scale/level metadata.
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 24);
    const Ciphertext ct = encrypt_vector(env, a, 3);
    const ckks::Evaluator::Hoisted h = env.eval.hoist(ct);
    for (int step : kSharedSteps) {
        const Ciphertext hr = env.eval.rotate_hoisted(h, step);
        const Ciphertext pr = env.eval.rotate(ct, step);
        EXPECT_EQ(hr.level(), pr.level()) << "step " << step;
        EXPECT_EQ(hr.scale, pr.scale) << "step " << step;
        EXPECT_LT(max_abs_diff(decrypt_vector(env, hr),
                               decrypt_vector(env, pr)),
                  1e-4)
            << "step " << step;
        // And both match the cleartext rotation.
        std::vector<double> want(n);
        for (u64 i = 0; i < n; ++i) {
            const u64 src =
                (i + static_cast<u64>(((step % static_cast<i64>(n)) +
                                       static_cast<i64>(n))) ) % n;
            want[i] = a[src];
        }
        EXPECT_LT(max_abs_diff(decrypt_vector(env, hr), want), 1e-4)
            << "step " << step;
    }
}

TEST(Evaluator, HoistedRotationByZeroIsIdentity)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 25);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    const ckks::Evaluator::Hoisted h = env.eval.hoist(ct);
    const Ciphertext r = env.eval.rotate_hoisted(h, 0);
    EXPECT_LT(max_abs_diff(decrypt_vector(env, r), a), 1e-4);
    // Full-slot rotations are also trivial.
    const Ciphertext full = env.eval.rotate_hoisted(
        h, static_cast<int>(env.ctx.slot_count()));
    EXPECT_LT(max_abs_diff(decrypt_vector(env, full), a), 1e-4);
}

TEST(Evaluator, MissingGaloisKeyRejectedForHoistedRotation)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 26);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    const ckks::Evaluator::Hoisted h = env.eval.hoist(ct);
    EXPECT_THROW((void)env.eval.rotate_hoisted(h, 123), Error);
    EXPECT_THROW((void)env.eval.galois_key_for_step(123), Error);
    // A trivial step never needs a key, even when none would exist.
    EXPECT_NO_THROW((void)env.eval.rotate_hoisted(h, 0));
}

TEST(Evaluator, RotationsRejectedWhenNoGaloisKeysSet)
{
    // A fresh evaluator with no key registry must fail loudly on every
    // rotation entry point, not crash on a null lookup.
    CkksEnv& env = CkksEnv::shared();
    ckks::Evaluator bare(env.ctx, env.encoder);
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 27);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    EXPECT_THROW((void)bare.rotate(ct, 1), Error);
    EXPECT_THROW((void)bare.conjugate(ct), Error);
    const ckks::Evaluator::Hoisted h = bare.hoist(ct);
    EXPECT_THROW((void)bare.rotate_hoisted(h, 1), Error);
    auto acc = bare.make_accumulator(2, env.ctx.scale());
    EXPECT_THROW(bare.accumulate_rotation(acc, ct, 1), Error);
    // Step 0 accumulates without keys (it is a plain addition).
    EXPECT_NO_THROW(bare.accumulate_rotation(acc, ct, 0));
}

TEST(Evaluator, MissingGaloisKeyRejectedInAccumulator)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 28);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    auto acc = env.eval.make_accumulator(2, env.ctx.scale());
    EXPECT_THROW(env.eval.accumulate_rotation(acc, ct, 123), Error);
}

TEST(Evaluator, OpCountersTrackRotationsAndMults)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 23);
    const Ciphertext ct = encrypt_vector(env, a, 2);
    env.ctx.counters().reset();
    (void)env.eval.rotate(ct, 1);
    const auto h = env.eval.hoist(ct);
    (void)env.eval.rotate_hoisted(h, 2);
    (void)env.eval.mul(ct, ct);
    const auto& c = env.ctx.counters();
    EXPECT_EQ(c.hrot, 1u);
    EXPECT_EQ(c.hrot_hoisted, 1u);
    EXPECT_EQ(c.hmult, 1u);
    EXPECT_EQ(c.total_rotations(), 2u);
    EXPECT_EQ(c.keyswitch, 3u);
}

}  // namespace
}  // namespace orion::test
