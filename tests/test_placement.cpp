#include <gtest/gtest.h>

#include "src/core/placement.h"

namespace orion::core {
namespace {

PlacementUnit
unit(int id, int depth, double base_latency = 1.0)
{
    PlacementUnit u;
    u.layer_id = id;
    u.name = "u" + std::to_string(id);
    u.depth = depth;
    u.latency = [base_latency](int lvl) {
        return base_latency * (1.0 + 0.1 * lvl);
    };
    return u;
}

Chain
chain_of(std::vector<PlacementUnit> units)
{
    Chain c;
    for (PlacementUnit& u : units) {
        ChainItem item;
        item.kind = ChainItem::Kind::kUnit;
        item.unit = std::move(u);
        c.items.push_back(std::move(item));
    }
    return c;
}

/** Replays decisions and verifies the level accounting is consistent. */
void
validate_decisions(const PlacementResult& r, const PlacementConfig& cfg)
{
    // Every unit executes at a level at least its depth, never above l_eff.
    for (const UnitDecision& d : r.decisions) {
        EXPECT_GE(d.exec_level, 0) << d.name;
        EXPECT_LE(d.exec_level, cfg.l_eff) << d.name;
    }
}

TEST(Placement, SkiplessNetworkNeedsNoBootstrap)
{
    // Figure 6a/b: three depth-1 layers with l_eff = 3 fit exactly.
    const Chain c = chain_of({unit(0, 1), unit(1, 1), unit(2, 1)});
    PlacementConfig cfg;
    cfg.l_eff = 3;
    cfg.bootstrap_latency = 100.0;
    const PlacementResult r = place_bootstraps(c, cfg);
    EXPECT_EQ(r.num_bootstraps, 0u);
    EXPECT_EQ(r.decisions.size(), 3u);
    validate_decisions(r, cfg);
}

TEST(Placement, DeepChainBootstrapsMinimally)
{
    // Seven depth-1 layers, l_eff = 3: needs at least ceil((7-3)/3) = 2
    // bootstraps.
    std::vector<PlacementUnit> units;
    for (int i = 0; i < 7; ++i) units.push_back(unit(i, 1));
    const Chain c = chain_of(std::move(units));
    PlacementConfig cfg;
    cfg.l_eff = 3;
    cfg.bootstrap_latency = 100.0;
    const PlacementResult r = place_bootstraps(c, cfg);
    EXPECT_EQ(r.num_bootstraps, 2u);
    validate_decisions(r, cfg);
}

TEST(Placement, PrefersCheapLowLevelExecution)
{
    // With latency growing in level and no bootstraps required, units
    // should run as low as feasibility allows (the paper's observation
    // that level management, not just bootstrap count, drives latency).
    const Chain c = chain_of({unit(0, 1, 5.0), unit(1, 1, 5.0)});
    PlacementConfig cfg;
    cfg.l_eff = 8;
    cfg.bootstrap_latency = 1000.0;
    const PlacementResult r = place_bootstraps(c, cfg);
    ASSERT_EQ(r.decisions.size(), 2u);
    EXPECT_EQ(r.decisions[0].exec_level, 2);
    EXPECT_EQ(r.decisions[1].exec_level, 1);
    EXPECT_EQ(r.num_bootstraps, 0u);
}

TEST(Placement, ExpensiveBootstrapTradedAgainstHighLevelCompute)
{
    // When bootstrapping is nearly free, the solver may bootstrap to run
    // layers cheaply; when it is expensive, it avoids bootstraps entirely.
    std::vector<PlacementUnit> units;
    for (int i = 0; i < 6; ++i) units.push_back(unit(i, 1, 1.0));
    const Chain c = chain_of(std::move(units));
    PlacementConfig cfg;
    cfg.l_eff = 6;
    cfg.bootstrap_latency = 1e6;
    const PlacementResult expensive = place_bootstraps(c, cfg);
    EXPECT_EQ(expensive.num_bootstraps, 0u);
    cfg.bootstrap_latency = 1e-9;
    const PlacementResult cheap = place_bootstraps(c, cfg);
    EXPECT_LE(cheap.latency, expensive.latency);
}

Chain
residual_chain(int backbone_depth, int join_id)
{
    // fork -> [backbone (depth units), identity] -> join(Add, depth 0)
    Chain backbone;
    for (int i = 0; i < backbone_depth; ++i) {
        ChainItem item;
        item.kind = ChainItem::Kind::kUnit;
        item.unit = unit(100 + i, 1);
        backbone.items.push_back(std::move(item));
    }
    ChainItem region;
    region.kind = ChainItem::Kind::kRegion;
    region.unit = unit(join_id, 0, 0.01);
    region.branches.push_back(std::move(backbone));
    region.branches.emplace_back();  // identity shortcut
    Chain c;
    c.items.push_back(std::move(region));
    return c;
}

TEST(Placement, ResidualRegionJoinsAtCommonLevel)
{
    // Figure 6c/d: the identity shortcut mod-downs for free to meet the
    // backbone, so no bootstrap is needed when the backbone fits.
    const Chain c = residual_chain(/*backbone_depth=*/2, /*join_id=*/7);
    PlacementConfig cfg;
    cfg.l_eff = 3;
    cfg.bootstrap_latency = 100.0;
    const PlacementResult r = place_bootstraps(c, cfg);
    EXPECT_EQ(r.num_bootstraps, 0u);
    validate_decisions(r, cfg);
}

TEST(Placement, ResidualRegionBootstrapsInsideBackbone)
{
    // Backbone deeper than l_eff: at least one bootstrap must be placed
    // inside the region (Figure 6c "requires at least one bootstrap").
    const Chain c = residual_chain(/*backbone_depth=*/5, /*join_id=*/7);
    PlacementConfig cfg;
    cfg.l_eff = 3;
    cfg.bootstrap_latency = 100.0;
    const PlacementResult r = place_bootstraps(c, cfg);
    EXPECT_GE(r.num_bootstraps, 1u);
    validate_decisions(r, cfg);
}

TEST(Placement, OrionBeatsLazyOnResidualNetworks)
{
    // A stack of residual blocks: the naive delay-until-forced strategy
    // places more bootstraps and higher latency (Section 5.1).
    Chain c;
    for (int blk = 0; blk < 6; ++blk) {
        Chain backbone;
        for (int i = 0; i < 3; ++i) {
            ChainItem item;
            item.kind = ChainItem::Kind::kUnit;
            item.unit = unit(100 * blk + i, 1);
            backbone.items.push_back(std::move(item));
        }
        ChainItem region;
        region.kind = ChainItem::Kind::kRegion;
        region.unit = unit(1000 + blk, 0, 0.01);
        region.branches.push_back(std::move(backbone));
        region.branches.emplace_back();
        c.items.push_back(std::move(region));
    }
    PlacementConfig cfg;
    cfg.l_eff = 4;
    cfg.bootstrap_latency = 50.0;
    const PlacementResult orion = place_bootstraps(c, cfg);
    const PlacementResult lazy = place_bootstraps_lazy(c, cfg);
    EXPECT_LE(orion.latency, lazy.latency);
    EXPECT_LE(orion.num_bootstraps, lazy.num_bootstraps);
    validate_decisions(orion, cfg);
}

TEST(Placement, MultiCiphertextEdgesWeightBootstrapCost)
{
    // A unit whose input spans 4 ciphertexts costs 4 bootstraps.
    std::vector<PlacementUnit> units;
    for (int i = 0; i < 4; ++i) {
        PlacementUnit u = unit(i, 1);
        u.input_cts = 4;
        u.output_cts = 4;
        units.push_back(std::move(u));
    }
    const Chain c = chain_of(std::move(units));
    PlacementConfig cfg;
    cfg.l_eff = 2;
    cfg.bootstrap_latency = 10.0;
    const PlacementResult r = place_bootstraps(c, cfg);
    EXPECT_EQ(r.num_bootstraps % 4, 0u);
    EXPECT_GE(r.num_bootstraps, 4u);
}

TEST(Placement, InfeasibleWhenUnitDeeperThanLeff)
{
    const Chain c = chain_of({unit(0, 5)});
    PlacementConfig cfg;
    cfg.l_eff = 3;
    EXPECT_THROW(place_bootstraps(c, cfg), Error);
}

TEST(Placement, SolveTimeGrowsRoughlyLinearly)
{
    // Table 5's scalability claim: placement time linear in depth.
    auto time_for = [](int blocks) {
        Chain c;
        for (int blk = 0; blk < blocks; ++blk) {
            Chain backbone;
            for (int i = 0; i < 2; ++i) {
                ChainItem item;
                item.kind = ChainItem::Kind::kUnit;
                item.unit = unit(10 * blk + i, 2);
                backbone.items.push_back(std::move(item));
            }
            ChainItem region;
            region.kind = ChainItem::Kind::kRegion;
            region.unit = unit(1000 + blk, 0, 0.01);
            region.branches.push_back(std::move(backbone));
            region.branches.emplace_back();
            c.items.push_back(std::move(region));
        }
        PlacementConfig cfg;
        cfg.l_eff = 10;
        cfg.bootstrap_latency = 10.0;
        return place_bootstraps(c, cfg).solve_seconds;
    };
    // Best-of-5 per size: a single measurement flakes when the machine is
    // loaded (e.g. ctest -j alongside multithreaded suites); the minimum
    // is a stable proxy for the true cost.
    auto best_of = [&](int blocks) {
        double best = time_for(blocks);
        for (int i = 0; i < 4; ++i) best = std::min(best, time_for(blocks));
        return best;
    };
    const double t10 = best_of(10);
    const double t80 = best_of(80);
    // Allow generous slack for timer noise; the point is "not quadratic".
    EXPECT_LT(t80, 40.0 * std::max(t10, 1e-5));
}

}  // namespace
}  // namespace orion::core
