#include <gtest/gtest.h>

#include <set>

#include "src/ckks/primes.h"

namespace orion::ckks {
namespace {

TEST(Primes, KnownPrimality)
{
    EXPECT_FALSE(is_prime(0));
    EXPECT_FALSE(is_prime(1));
    EXPECT_TRUE(is_prime(2));
    EXPECT_TRUE(is_prime(3));
    EXPECT_FALSE(is_prime(4));
    EXPECT_TRUE(is_prime(998244353));            // 119 * 2^23 + 1
    EXPECT_FALSE(is_prime((u64(1) << 31) | 1));  // 3 * 715827883
    EXPECT_FALSE(is_prime(u64(1) << 32));
    EXPECT_TRUE(is_prime(2305843009213693951));  // 2^61 - 1 (Mersenne)
    EXPECT_FALSE(is_prime(2147483647ull * 2147483647ull));  // square
}

TEST(Primes, GeneratedPrimesAreNttFriendly)
{
    const u64 n = 1 << 12;
    const std::vector<u64> primes = generate_ntt_primes(45, 5, n);
    ASSERT_EQ(primes.size(), 5u);
    std::set<u64> unique(primes.begin(), primes.end());
    EXPECT_EQ(unique.size(), 5u);
    for (u64 p : primes) {
        EXPECT_TRUE(is_prime(p));
        EXPECT_EQ(p % (2 * n), 1u);
        EXPECT_GE(p, u64(1) << 44);
        EXPECT_LT(p, u64(1) << 45);
    }
}

TEST(Primes, SkipListRespected)
{
    const u64 n = 1 << 10;
    const std::vector<u64> first = generate_ntt_primes(40, 3, n);
    const std::vector<u64> second = generate_ntt_primes(40, 3, n, first);
    for (u64 p : second) {
        for (u64 s : first) EXPECT_NE(p, s);
    }
}

TEST(Primes, PrimitiveRootHasOrder2N)
{
    const u64 n = 1 << 10;
    const u64 p = generate_ntt_primes(40, 1, n)[0];
    const Modulus q(p);
    const u64 psi = find_primitive_root(n, q);
    EXPECT_EQ(pow_mod(psi, n, q), p - 1);       // psi^N = -1
    EXPECT_EQ(pow_mod(psi, 2 * n, q), 1u);      // psi^2N = 1
}

}  // namespace
}  // namespace orion::ckks
