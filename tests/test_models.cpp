#include <gtest/gtest.h>

#include "src/nn/models.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using nn::Network;

TEST(Models, MnistModelsMatchPaperParameterCounts)
{
    // Table 2: MLP 0.12M, LoLA 0.10M, LeNet 1.66M.
    EXPECT_NEAR(static_cast<double>(nn::make_mlp().param_count()), 0.12e6,
                0.02e6);
    EXPECT_NEAR(static_cast<double>(nn::make_lola().param_count()), 0.10e6,
                0.02e6);
    EXPECT_NEAR(static_cast<double>(nn::make_lenet5().param_count()), 1.66e6,
                0.05e6);
}

TEST(Models, CifarModelsMatchPaperParameterCounts)
{
    // Table 2: AlexNet 23.3M, VGG-16 14.7M, ResNet-20 0.27M.
    EXPECT_NEAR(
        static_cast<double>(
            nn::make_alexnet_cifar(nn::Act::kRelu).param_count()),
        23.3e6, 1.0e6);
    EXPECT_NEAR(
        static_cast<double>(nn::make_vgg16_cifar(nn::Act::kRelu).param_count()),
        14.7e6, 0.5e6);
    EXPECT_NEAR(
        static_cast<double>(
            nn::make_resnet_cifar(20, nn::Act::kRelu).param_count()),
        0.27e6, 0.05e6);
}

TEST(Models, LargeModelsMatchPaperParameterCounts)
{
    // Table 2: MobileNet 3.25M, ResNet-18 11.3M, ResNet-34 21.8M,
    // ResNet-50 25.6M; Section 8.6: YOLO-v1 139M.
    EXPECT_NEAR(static_cast<double>(nn::make_mobilenet_v1().param_count()),
                3.25e6, 0.3e6);
    EXPECT_NEAR(static_cast<double>(nn::make_resnet18_tiny().param_count()),
                11.3e6, 0.5e6);
    EXPECT_NEAR(
        static_cast<double>(nn::make_resnet34_imagenet().param_count()),
        21.8e6, 1.0e6);
    EXPECT_NEAR(
        static_cast<double>(nn::make_resnet50_imagenet().param_count()),
        25.6e6, 1.5e6);
    EXPECT_NEAR(static_cast<double>(nn::make_yolo_v1().param_count()), 139e6,
                8e6);
}

TEST(Models, ResNetDepthFormula)
{
    for (int depth : {20, 32, 44, 56, 110}) {
        const Network net = nn::make_resnet_cifar(depth, nn::Act::kRelu);
        int convs = 0;
        for (int id = 0; id < net.num_layers(); ++id) {
            if (net.layer(id).kind == nn::LayerKind::kConv2d &&
                net.layer(id).conv.kernel_h == 3) {
                ++convs;
            }
        }
        // 6n+2 3x3 convolutions minus the final FC = depth - 1.
        EXPECT_EQ(convs, depth - 1) << "depth " << depth;
    }
    EXPECT_THROW(nn::make_resnet_cifar(21, nn::Act::kRelu), Error);
}

TEST(Models, ForwardShapesAreConsistent)
{
    struct Case {
        const char* name;
        u64 in, out;
    };
    const std::vector<Case> cases = {
        {"mlp", 784, 10},        {"lola", 784, 10},
        {"lenet5", 784, 10},     {"resnet20", 3 * 32 * 32, 10},
        {"mobilenet", 3 * 64 * 64, 200},
    };
    for (const Case& c : cases) {
        const Network net = nn::make_model(c.name);
        EXPECT_EQ(net.shape_of(net.input_id()).size(), c.in) << c.name;
        const std::vector<double> x = random_vector(c.in, 1.0, 60);
        const std::vector<double> y = net.forward(x);
        EXPECT_EQ(y.size(), c.out) << c.name;
        for (double v : y) {
            EXPECT_TRUE(std::isfinite(v)) << c.name;
        }
    }
}

TEST(Models, ActivationSuffixSelectsActivation)
{
    const Network relu = nn::make_model("resnet20-relu");
    const Network silu = nn::make_model("resnet20-silu");
    auto count_kind = [](const Network& n, nn::ActivationSpec::Kind k) {
        int c = 0;
        for (int id = 0; id < n.num_layers(); ++id) {
            const nn::Layer& l = n.layer(id);
            if (l.kind == nn::LayerKind::kActivation && l.act.kind == k) ++c;
        }
        return c;
    };
    EXPECT_GT(count_kind(relu, nn::ActivationSpec::Kind::kRelu), 0);
    EXPECT_EQ(count_kind(relu, nn::ActivationSpec::Kind::kSilu), 0);
    EXPECT_GT(count_kind(silu, nn::ActivationSpec::Kind::kSilu), 0);
    EXPECT_EQ(count_kind(silu, nn::ActivationSpec::Kind::kRelu), 0);
}

TEST(Models, UnknownModelRejected)
{
    EXPECT_THROW(nn::make_model("transformer"), Error);
}

TEST(Models, ModelNamesAreCaseInsensitive)
{
    EXPECT_EQ(nn::make_model("MLP").network_name(), "mlp");
    EXPECT_EQ(nn::make_model("LeNet5").network_name(), "lenet5");
    EXPECT_EQ(nn::make_model("ResNet20-SiLU").network_name(),
              "resnet20-silu");
    EXPECT_EQ(nn::make_model("Micro").network_name(), "micro-mlp");
}

TEST(Models, UnknownModelErrorListsEveryValidName)
{
    // The error must name every valid model so a typo is self-correcting.
    try {
        nn::make_model("transformer");
        FAIL() << "expected an Error";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown model 'transformer'"),
                  std::string::npos)
            << msg;
        for (const std::string& name : nn::model_names()) {
            EXPECT_NE(msg.find(name), std::string::npos)
                << "missing '" << name << "' in: " << msg;
        }
        EXPECT_NE(msg.find("-relu/-silu"), std::string::npos) << msg;
    }
    // Non-numeric or absurd resnet suffixes are unknown names - never
    // stoi crashes (std::invalid_argument / std::out_of_range).
    expect_throw_contains<Error>([] { nn::make_model("resnetXL"); },
                                 "unknown model");
    expect_throw_contains<Error>([] { nn::make_model("resnet"); },
                                 "unknown model");
    expect_throw_contains<Error>(
        [] { nn::make_model("resnet99999999999999999999"); },
        "unknown model");
}

TEST(Models, FlopCountsTrackPaper)
{
    // Table 2 FLOPS column (multiplies): ResNet-20 41.2M, VGG-16 314M.
    const double r20 = static_cast<double>(
        nn::make_resnet_cifar(20, nn::Act::kRelu).flop_count());
    EXPECT_GT(r20, 35e6);
    EXPECT_LT(r20, 50e6);
    const double vgg = static_cast<double>(
        nn::make_vgg16_cifar(nn::Act::kRelu).flop_count());
    EXPECT_GT(vgg, 280e6);
    EXPECT_LT(vgg, 350e6);
}

TEST(Network, ConsumersAndTopoOrder)
{
    const Network net = nn::make_resnet_cifar(8, nn::Act::kRelu);
    // Every non-output layer has at least one consumer; forks have two.
    int forks = 0;
    for (int id = 0; id < net.num_layers(); ++id) {
        const auto consumers = net.consumers(id);
        if (id != net.output_id()) {
            EXPECT_GE(consumers.size(), 1u) << id;
        }
        if (consumers.size() > 1) ++forks;
    }
    EXPECT_EQ(forks, 3);  // one fork per residual block in ResNet-8
}

TEST(Network, RejectsMalformedGraphs)
{
    Network net("bad");
    EXPECT_THROW(net.forward({}), Error);  // no input/output
    int id = net.add_input(1, 4, 4);
    EXPECT_THROW(net.add_input(1, 4, 4), Error);  // second input
    lin::Conv2dSpec spec;
    spec.in_channels = 2;  // mismatched channels
    spec.out_channels = 1;
    EXPECT_THROW(net.add_conv2d(id, spec, {0.0, 0.0}), Error);
}

TEST(Network, DanglingInputIdsAreRejectedWithPreciseErrors)
{
    Network net("validate");
    const int id = net.add_input(1, 4, 4);
    lin::Conv2dSpec spec;
    spec.in_channels = 1;
    spec.out_channels = 1;
    spec.kernel_h = spec.kernel_w = 3;
    spec.pad = 1;
    const std::vector<double> w(spec.weight_count(), 0.1);

    expect_throw_contains<Error>(
        [&] { net.add_conv2d(7, spec, w); },
        "add_conv2d input id 7 does not name an existing layer");
    expect_throw_contains<Error>(
        [&] { net.add_linear(-1, 2, {0.0, 0.0}); },
        "add_linear input id -1 does not name an existing layer");
    expect_throw_contains<Error>(
        [&] { net.add_batchnorm2d(3, {1.0}, {0.0}, {0.0}, {1.0}); },
        "add_batchnorm2d input id 3");
    expect_throw_contains<Error>([&] { net.add_avgpool2d(2, 2, 2); },
                                 "add_avgpool2d input id 2");
    expect_throw_contains<Error>(
        [&] { net.add_activation(5, nn::ActivationSpec::square()); },
        "add_activation input id 5");
    expect_throw_contains<Error>([&] { net.add_add(id, 9); },
                                 "add_add input id 9");
    expect_throw_contains<Error>([&] { net.add_flatten(4); },
                                 "add_flatten input id 4");
    expect_throw_contains<Error>([&] { net.set_output(6); },
                                 "set_output input id 6");
}

TEST(Network, WrongWeightAndBiasSizesAreRejectedWithPreciseErrors)
{
    Network net("validate");
    const int id = net.add_input(2, 4, 4);
    lin::Conv2dSpec spec;
    spec.in_channels = 2;
    spec.out_channels = 3;
    spec.kernel_h = spec.kernel_w = 3;
    spec.pad = 1;

    expect_throw_contains<Error>(
        [&] { net.add_conv2d(id, spec, {0.0, 0.0}); },
        "add_conv2d expects 54 weights");
    expect_throw_contains<Error>(
        [&] {
            net.add_conv2d(id, spec,
                           std::vector<double>(spec.weight_count(), 0.1),
                           {0.0});
        },
        "one bias per output channel (3), got 1");
    expect_throw_contains<Error>(
        [&] { net.add_linear(id, 2, {0.0, 0.0, 0.0}); },
        "add_linear expects 2 x 32 = 64 weights");
    expect_throw_contains<Error>(
        [&] {
            net.add_linear(id, 2, std::vector<double>(64, 0.1),
                           {0.0, 0.0, 0.0});
        },
        "one bias per output feature (2), got 3");
    expect_throw_contains<Error>(
        [&] { net.add_batchnorm2d(id, {1.0}, {0.0}, {0.0}, {1.0, 1.0}); },
        "parameter sizes disagree");
    expect_throw_contains<Error>(
        [&] { net.add_batchnorm2d(id, {1.0}, {0.0}, {0.0}, {1.0}); },
        "one parameter per channel of (2, 4, 4), got 1");
}

TEST(Network, ShapeMismatchedAddOperandsAreRejected)
{
    Network net("validate");
    const int id = net.add_input(1, 8, 8);
    const int pooled = net.add_avgpool2d(id, 2, 2);
    expect_throw_contains<Error>(
        [&] { net.add_add(id, pooled); },
        "add_add operands must have equal shapes: layer 0 is (1, 8, 8), "
        "layer 1 is (1, 4, 4)");
    const int flat = net.add_flatten(id);
    expect_throw_contains<Error>([&] { net.add_add(id, flat); },
                                 "flat[64]");
    // Pool geometry that cannot fit the input is caught at add time.
    expect_throw_contains<Error>([&] { net.add_avgpool2d(id, 9, 1); },
                                 "does not fit the input (1, 8, 8)");
    expect_throw_contains<Error>([&] { net.add_avgpool2d(flat, 2, 2); },
                                 "needs a spatial");
}

}  // namespace
}  // namespace orion::test
