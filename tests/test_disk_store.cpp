#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "src/core/disk_store.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using core::DiskStoreReader;
using core::DiskStoreWriter;

std::string
temp_path(const char* stem)
{
    return std::string(::testing::TempDir()) + "/" + stem + ".orionds";
}

TEST(DiskStore, RoundTripsArrays)
{
    const std::string path = temp_path("arrays");
    const std::vector<double> d = random_vector(1000, 5.0, 1);
    const std::vector<u64> u = {0, 1, u64(1) << 62, 42};
    {
        DiskStoreWriter w(path);
        w.put_doubles("weights/layer0", d);
        w.put_u64s("plan/steps", u);
    }
    DiskStoreReader r(path);
    EXPECT_TRUE(r.has("weights/layer0"));
    EXPECT_TRUE(r.has("plan/steps"));
    EXPECT_FALSE(r.has("missing"));
    EXPECT_EQ(r.get_doubles("weights/layer0"), d);
    EXPECT_EQ(r.get_u64s("plan/steps"), u);
    std::remove(path.c_str());
}

TEST(DiskStore, RoundTripsDiagonalMatrices)
{
    const std::string path = temp_path("matrix");
    lin::DiagonalMatrix m(256);
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<double> dist(-1, 1);
    for (u64 k : {0ull, 3ull, 17ull, 255ull}) {
        for (u64 r = 0; r < 256; ++r) m.set(r, (r + k) % 256, dist(rng));
    }
    {
        DiskStoreWriter w(path);
        w.put_matrix("conv1", m);
    }
    DiskStoreReader r(path);
    const lin::DiagonalMatrix back = r.get_matrix("conv1");
    EXPECT_EQ(back.dim(), m.dim());
    EXPECT_EQ(back.diagonal_indices(), m.diagonal_indices());
    const std::vector<double> x = random_vector(256, 1.0, 3);
    EXPECT_LT(max_abs_diff(back.apply(x), m.apply(x)), 1e-12);
    std::remove(path.c_str());
}

TEST(DiskStore, RandomAccessDoesNotRequireFullLoad)
{
    // The Section 6 behaviour: the index is small, payloads stream on
    // demand in any order.
    const std::string path = temp_path("random");
    {
        DiskStoreWriter w(path);
        for (int i = 0; i < 50; ++i) {
            w.put_doubles("rec/" + std::to_string(i),
                          random_vector(100, 1.0, 10 + i));
        }
    }
    DiskStoreReader r(path);
    EXPECT_EQ(r.names().size(), 50u);
    // Read out of order.
    const std::vector<double> r49 = r.get_doubles("rec/49");
    const std::vector<double> r0 = r.get_doubles("rec/0");
    EXPECT_EQ(r49, random_vector(100, 1.0, 59));
    EXPECT_EQ(r0, random_vector(100, 1.0, 10));
    std::remove(path.c_str());
}

TEST(DiskStore, RejectsCorruptFiles)
{
    const std::string path = temp_path("corrupt");
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTASTORE";
    }
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());

    const std::string truncated = temp_path("truncated");
    {
        DiskStoreWriter w(truncated);
        w.put_doubles("a", {1.0, 2.0});
        w.close();
    }
    // Chop off the sentinel.
    {
        std::ifstream in(truncated, std::ios::binary);
        std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
        std::ofstream out(truncated, std::ios::binary | std::ios::trunc);
        // Cut into the last record's payload (past the 9-byte sentinel).
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size() - 14));
    }
    EXPECT_THROW(DiskStoreReader r2(truncated), Error);
    std::remove(truncated.c_str());
}

TEST(DiskStore, WrongTypeRejected)
{
    const std::string path = temp_path("types");
    {
        DiskStoreWriter w(path);
        w.put_doubles("x", {1.0});
    }
    DiskStoreReader r(path);
    EXPECT_THROW(r.get_u64s("x"), Error);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace orion::test
