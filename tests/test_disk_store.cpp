#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>

#include "src/core/disk_store.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using core::DiskStoreReader;
using core::DiskStoreWriter;

std::string
temp_path(const char* stem)
{
    return std::string(::testing::TempDir()) + "/" + stem + ".orionds";
}

TEST(DiskStore, RoundTripsArrays)
{
    const std::string path = temp_path("arrays");
    const std::vector<double> d = random_vector(1000, 5.0, 1);
    const std::vector<u64> u = {0, 1, u64(1) << 62, 42};
    {
        DiskStoreWriter w(path);
        w.put_doubles("weights/layer0", d);
        w.put_u64s("plan/steps", u);
    }
    DiskStoreReader r(path);
    EXPECT_TRUE(r.has("weights/layer0"));
    EXPECT_TRUE(r.has("plan/steps"));
    EXPECT_FALSE(r.has("missing"));
    EXPECT_EQ(r.get_doubles("weights/layer0"), d);
    EXPECT_EQ(r.get_u64s("plan/steps"), u);
    std::remove(path.c_str());
}

TEST(DiskStore, RoundTripsByteBlobs)
{
    // Opaque byte records (tag 'B') carry serialized wire records — the
    // key cache's spill format. Empty blobs are legal too.
    const std::string path = temp_path("bytes");
    std::vector<u8> blob(300);
    for (std::size_t i = 0; i < blob.size(); ++i) {
        blob[i] = static_cast<u8>(i * 7 + 1);
    }
    const std::vector<u8> empty;
    {
        DiskStoreWriter w(path);
        w.put_bytes("keys/relin", blob);
        w.put_bytes("keys/none", empty);
    }
    DiskStoreReader r(path);
    EXPECT_EQ(r.get_bytes("keys/relin"), blob);
    EXPECT_EQ(r.get_bytes("keys/none"), empty);
    // Typed accessors must refuse the blob and vice versa.
    EXPECT_THROW(r.get_u64s("keys/relin"), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, RoundTripsDiagonalMatrices)
{
    const std::string path = temp_path("matrix");
    lin::DiagonalMatrix m(256);
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<double> dist(-1, 1);
    for (u64 k : {0ull, 3ull, 17ull, 255ull}) {
        for (u64 r = 0; r < 256; ++r) m.set(r, (r + k) % 256, dist(rng));
    }
    {
        DiskStoreWriter w(path);
        w.put_matrix("conv1", m);
    }
    DiskStoreReader r(path);
    const lin::DiagonalMatrix back = r.get_matrix("conv1");
    EXPECT_EQ(back.dim(), m.dim());
    EXPECT_EQ(back.diagonal_indices(), m.diagonal_indices());
    const std::vector<double> x = random_vector(256, 1.0, 3);
    EXPECT_LT(max_abs_diff(back.apply(x), m.apply(x)), 1e-12);
    std::remove(path.c_str());
}

TEST(DiskStore, RandomAccessDoesNotRequireFullLoad)
{
    // The Section 6 behaviour: the index is small, payloads stream on
    // demand in any order.
    const std::string path = temp_path("random");
    {
        DiskStoreWriter w(path);
        for (int i = 0; i < 50; ++i) {
            w.put_doubles("rec/" + std::to_string(i),
                          random_vector(100, 1.0, 10 + i));
        }
    }
    DiskStoreReader r(path);
    EXPECT_EQ(r.names().size(), 50u);
    // Read out of order.
    const std::vector<double> r49 = r.get_doubles("rec/49");
    const std::vector<double> r0 = r.get_doubles("rec/0");
    EXPECT_EQ(r49, random_vector(100, 1.0, 59));
    EXPECT_EQ(r0, random_vector(100, 1.0, 10));
    std::remove(path.c_str());
}

TEST(DiskStore, RejectsCorruptFiles)
{
    const std::string path = temp_path("corrupt");
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTASTORE";
    }
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());

    const std::string truncated = temp_path("truncated");
    {
        DiskStoreWriter w(truncated);
        w.put_doubles("a", {1.0, 2.0});
        w.close();
    }
    // Chop off the sentinel.
    {
        std::ifstream in(truncated, std::ios::binary);
        std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
        std::ofstream out(truncated, std::ios::binary | std::ios::trunc);
        // Cut into the last record's payload (past the 9-byte sentinel).
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size() - 14));
    }
    EXPECT_THROW(DiskStoreReader r2(truncated), Error);
    std::remove(truncated.c_str());
}

// ---- hardening regressions: every corruption mode must produce a clear
// ---- error at open (or first read), never a silent partial result ----

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
write_file(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
}

/** A minimal valid store with one record: "a" = {1.0, 2.0}. */
std::string
one_record_store(const std::string& path)
{
    DiskStoreWriter w(path);
    w.put_doubles("a", {1.0, 2.0});
    w.close();
    return read_file(path);
}

TEST(DiskStore, OversizedNameLengthRejected)
{
    const std::string path = temp_path("badname");
    std::string contents = one_record_store(path);
    // The name length field sits right after magic (8) + tag (1).
    const u64 huge = u64(1) << 60;
    std::memcpy(contents.data() + 9, &huge, sizeof(huge));
    write_file(path, contents);
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, PayloadPastEofRejected)
{
    const std::string path = temp_path("badbytes");
    std::string contents = one_record_store(path);
    // The byte-count field follows magic + tag + name_len + 1-char name.
    const u64 oversized = 1 << 20;
    std::memcpy(contents.data() + 18, &oversized, sizeof(oversized));
    write_file(path, contents);
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, MissingTrailerRejected)
{
    const std::string path = temp_path("notrailer");
    std::string contents = one_record_store(path);
    // Drop the 8-byte zero trailer; the sentinel byte alone must not pass.
    write_file(path, contents.substr(0, contents.size() - 8));
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, TrailingGarbageRejected)
{
    const std::string path = temp_path("trailing");
    std::string contents = one_record_store(path);
    write_file(path, contents + "extra");
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, UnknownTagRejected)
{
    const std::string path = temp_path("badtag");
    std::string contents = one_record_store(path);
    contents[8] = 'Q';  // the record tag
    write_file(path, contents);
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, DuplicateRecordRejected)
{
    // The writer refuses at write time...
    const std::string path = temp_path("dupe");
    {
        DiskStoreWriter w(path);
        w.put_doubles("same", {1.0});
        EXPECT_THROW(w.put_doubles("same", {2.0}), Error);
    }
    std::remove(path.c_str());

    // ...and the reader independently rejects a hand-crafted file with
    // two same-named records.
    const std::string crafted = temp_path("dupe2");
    std::string contents = one_record_store(crafted);
    const std::string record =
        contents.substr(8, contents.size() - 8 - 9);  // strip magic+trailer
    const std::string tail = contents.substr(contents.size() - 9);
    write_file(crafted, contents.substr(0, 8) + record + record + tail);
    EXPECT_THROW(DiskStoreReader r(crafted), Error);
    std::remove(crafted.c_str());
}

TEST(DiskStore, NonIntegralElementCountRejected)
{
    // Hand-craft a store whose record payload is 7 bytes: structurally
    // valid, but not a whole number of doubles (or u64s).
    const std::string path = temp_path("odd7");
    {
        std::ofstream out(path, std::ios::binary);
        out.write("ORIONDS1", 8);
        out.put('D');
        const u64 name_len = 1;
        out.write(reinterpret_cast<const char*>(&name_len),
                  sizeof(name_len));
        out.put('x');
        const u64 bytes = 7;
        out.write(reinterpret_cast<const char*>(&bytes), sizeof(bytes));
        out.write("1234567", 7);
        out.put('Z');
        const u64 zero = 0;
        out.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
    }
    DiskStoreReader r(path);
    EXPECT_THROW(r.get_doubles("x"), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, EmptyFileRejected)
{
    const std::string path = temp_path("empty");
    write_file(path, "");
    EXPECT_THROW(DiskStoreReader r(path), Error);
    std::remove(path.c_str());
}

TEST(DiskStore, WrongTypeRejected)
{
    const std::string path = temp_path("types");
    {
        DiskStoreWriter w(path);
        w.put_doubles("x", {1.0});
    }
    DiskStoreReader r(path);
    EXPECT_THROW(r.get_u64s("x"), Error);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace orion::test
