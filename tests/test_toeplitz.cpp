#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "src/linalg/linalg.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using lin::BlockedMatrix;
using lin::Conv2dSpec;
using lin::TensorLayout;

std::vector<double>
random_weights(u64 count, u64 seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> out(count);
    for (double& w : out) w = dist(rng);
    return out;
}

TEST(Layout, RasterSlotOrder)
{
    const TensorLayout l(3, 4, 5, /*gap=*/1);
    EXPECT_EQ(l.total_slots(), 60u);
    EXPECT_EQ(l.slot_of(0, 0, 0), 0u);
    EXPECT_EQ(l.slot_of(0, 0, 1), 1u);
    EXPECT_EQ(l.slot_of(0, 1, 0), 5u);
    EXPECT_EQ(l.slot_of(1, 0, 0), 20u);  // next plane
}

TEST(Layout, MultiplexedInterleavesChannels)
{
    // gap = 2: each 2x2 pixel block holds 4 channels (Figure 5b).
    const TensorLayout l(4, 2, 2, /*gap=*/2);
    EXPECT_EQ(l.planes(), 1);
    EXPECT_EQ(l.total_slots(), 16u);
    EXPECT_EQ(l.slot_of(0, 0, 0), 0u);
    EXPECT_EQ(l.slot_of(1, 0, 0), 1u);   // channel 1 at block offset (0,1)
    EXPECT_EQ(l.slot_of(2, 0, 0), 4u);   // channel 2 at block offset (1,0)
    EXPECT_EQ(l.slot_of(3, 0, 0), 5u);
    EXPECT_EQ(l.slot_of(0, 0, 1), 2u);   // next pixel, channel 0
    EXPECT_EQ(l.slot_of(0, 1, 0), 8u);
}

TEST(Layout, PackUnpackRoundTrip)
{
    for (int gap : {1, 2, 4}) {
        const TensorLayout l(8, 4, 4, gap);
        const std::vector<double> t =
            random_vector(l.logical_size(), 1.0, 13 + gap);
        EXPECT_EQ(l.unpack(l.pack(t)), t) << "gap " << gap;
    }
}

TEST(Layout, ChannelsBeyondGapSquaredUseExtraPlanes)
{
    const TensorLayout l(9, 2, 2, /*gap=*/2);
    EXPECT_EQ(l.planes(), 3);  // ceil(9/4)
    EXPECT_EQ(l.slot_of(4, 0, 0), 16u);
    // Channel 8 = plane 2, block offset (0, 0); pixel (1, 1) -> grid (2, 2).
    EXPECT_EQ(l.slot_of(8, 1, 1), 2u * 16u + 2u * 4u + 2u);
}

// ---- Parameterized sweep: Toeplitz matrix == reference convolution ----
// Covers the paper's claim of arbitrary parameter support: stride, padding,
// dilation, groups, kernel size, asymmetric channels, multiplexed inputs.

struct ConvCase {
    int ci, co, h, w, k, stride, pad, dilation, groups, in_gap;
};

class ToeplitzConvTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ToeplitzConvTest, MatrixMatchesReferenceConv)
{
    const ConvCase& tc = GetParam();
    Conv2dSpec spec;
    spec.in_channels = tc.ci;
    spec.out_channels = tc.co;
    spec.kernel_h = spec.kernel_w = tc.k;
    spec.stride = tc.stride;
    spec.pad = tc.pad;
    spec.dilation = tc.dilation;
    spec.groups = tc.groups;

    const TensorLayout in(tc.ci, tc.h, tc.w, tc.in_gap);
    const TensorLayout out = lin::conv_output_layout(spec, in);
    EXPECT_EQ(out.gap, tc.in_gap * tc.stride);

    const std::vector<double> weights =
        random_weights(spec.weight_count(), 101);
    const std::vector<double> input = random_vector(
        static_cast<u64>(tc.ci) * tc.h * tc.w, 1.0, 102);

    const u64 block_dim = 1u << 14;  // single block; cleartext only
    const BlockedMatrix m = lin::build_conv_matrix(spec, weights, in, out,
                                                   block_dim);
    const std::vector<double> packed_in =
        in.pack(input, m.col_blocks() * block_dim);
    const std::vector<double> y = m.apply(packed_in);

    const std::vector<double> expected =
        lin::conv2d_reference(spec, weights, input, tc.h, tc.w);
    // Compare in the multiplexed output layout.
    for (int c = 0; c < out.channels; ++c) {
        for (int oy = 0; oy < out.height; ++oy) {
            for (int ox = 0; ox < out.width; ++ox) {
                const double got = y[out.slot_of(c, oy, ox)];
                const double want =
                    expected[(static_cast<std::size_t>(c) * out.height + oy) *
                                 out.width +
                             ox];
                ASSERT_NEAR(got, want, 1e-9)
                    << "c=" << c << " y=" << oy << " x=" << ox;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ArbitraryConvolutions, ToeplitzConvTest,
    ::testing::Values(
        // SISO same-style conv (Figure 3).
        ConvCase{1, 1, 3, 3, 3, 1, 1, 1, 1, 1},
        // MIMO conv (Figure 4).
        ConvCase{2, 2, 3, 3, 3, 1, 1, 1, 1, 1},
        // Strided conv, the Figure 5 example: ci=1, co=4, stride 2, pad 0.
        ConvCase{1, 4, 4, 4, 2, 2, 0, 1, 1, 1},
        // Strided with padding (ResNet downsample blocks).
        ConvCase{4, 8, 8, 8, 3, 2, 1, 1, 1, 1},
        // 1x1 pointwise conv (MobileNet).
        ConvCase{8, 4, 6, 6, 1, 1, 0, 1, 1, 1},
        // Depthwise conv: groups == channels (MobileNet).
        ConvCase{6, 6, 8, 8, 3, 1, 1, 1, 6, 1},
        // Grouped conv, groups=2.
        ConvCase{4, 6, 5, 5, 3, 1, 1, 1, 2, 1},
        // Dilated conv.
        ConvCase{2, 3, 9, 9, 3, 1, 2, 2, 1, 1},
        // Strided conv on an already-multiplexed input (gap 2).
        ConvCase{4, 4, 8, 8, 3, 2, 1, 1, 1, 2},
        // Non-strided conv on a multiplexed input keeps the gap.
        ConvCase{4, 4, 8, 8, 3, 1, 1, 1, 1, 2},
        // Large kernel, no padding.
        ConvCase{1, 2, 10, 10, 5, 1, 0, 1, 1, 1},
        // Stride 4 (the stem of AlexNet-style nets).
        ConvCase{3, 4, 12, 12, 4, 4, 0, 1, 1, 1}));

TEST(Toeplitz, StridedConvSparseVsMultiplexedDiagonals)
{
    // The Figure 5 claim: with raster (gap-out = 1 forced) packing a
    // strided conv produces many sparse diagonals; multiplexed packing
    // (gap-out = stride) produces far fewer.
    Conv2dSpec spec;
    spec.in_channels = 1;
    spec.out_channels = 4;
    spec.kernel_h = spec.kernel_w = 2;
    spec.stride = 2;
    const TensorLayout in(1, 8, 8, 1);

    const std::vector<double> weights =
        random_weights(spec.weight_count(), 103);
    const u64 block_dim = 1u << 14;

    // Raster output: gap 1 (the naive Toeplitz of Figure 5a).
    const TensorLayout raster_out(4, 4, 4, 1);
    const BlockedMatrix raster = lin::build_conv_matrix(
        spec, weights, in, raster_out, block_dim);

    // Multiplexed output: gap 2 (Figure 5b).
    const TensorLayout mux_out = lin::conv_output_layout(spec, in);
    const BlockedMatrix mux = lin::build_conv_matrix(spec, weights, in,
                                                     mux_out, block_dim);

    EXPECT_GT(raster.num_diagonals(), 2 * mux.num_diagonals())
        << "multiplexed packing should need far fewer diagonals";
}

TEST(Toeplitz, LinearLayerMatchesDense)
{
    const TensorLayout in(4, 3, 3, 2);  // multiplexed input to FC layer
    const int in_features = static_cast<int>(in.logical_size());
    const int out_features = 7;
    const std::vector<double> w =
        random_weights(static_cast<u64>(out_features) * in_features, 104);
    const std::vector<double> x = random_vector(in_features, 1.0, 105);

    const u64 block_dim = 1u << 12;
    const BlockedMatrix m =
        lin::build_linear_matrix(out_features, in_features, w, in, block_dim);
    const std::vector<double> y = m.apply(in.pack(x, block_dim));
    for (int r = 0; r < out_features; ++r) {
        double expect = 0;
        for (int c = 0; c < in_features; ++c) {
            expect += w[static_cast<std::size_t>(r) * in_features + c] * x[c];
        }
        ASSERT_NEAR(y[r], expect, 1e-9) << r;
    }
}

TEST(Toeplitz, AvgPoolMatchesReference)
{
    const TensorLayout in(2, 8, 8, 1);
    const TensorLayout out = lin::avgpool_output_layout(2, 2, in);
    EXPECT_EQ(out.gap, 2);
    EXPECT_EQ(out.height, 4);
    const u64 block_dim = 1u << 12;
    const BlockedMatrix m = lin::build_avgpool_matrix(2, 2, in, out,
                                                      block_dim);
    const std::vector<double> x = random_vector(2 * 8 * 8, 1.0, 106);
    const std::vector<double> y = m.apply(in.pack(x, block_dim));
    for (int c = 0; c < 2; ++c) {
        for (int oy = 0; oy < 4; ++oy) {
            for (int ox = 0; ox < 4; ++ox) {
                double expect = 0;
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        expect += x[(static_cast<std::size_t>(c) * 8 +
                                     2 * oy + dy) *
                                        8 +
                                    2 * ox + dx];
                    }
                }
                expect /= 4.0;
                ASSERT_NEAR(y[out.slot_of(c, oy, ox)], expect, 1e-9);
            }
        }
    }
}

TEST(Toeplitz, ChannelScaleFoldsIntoMatrix)
{
    Conv2dSpec spec;
    spec.in_channels = 2;
    spec.out_channels = 2;
    spec.kernel_h = spec.kernel_w = 3;
    spec.pad = 1;
    const TensorLayout in(2, 4, 4, 1);
    const TensorLayout out = lin::conv_output_layout(spec, in);
    const std::vector<double> w = random_weights(spec.weight_count(), 107);
    const std::vector<double> scale = {2.0, -0.5};
    const u64 block_dim = 1u << 10;
    const BlockedMatrix scaled =
        lin::build_conv_matrix(spec, w, in, out, block_dim, scale);
    const BlockedMatrix plain =
        lin::build_conv_matrix(spec, w, in, out, block_dim);
    const std::vector<double> x = random_vector(2 * 4 * 4, 1.0, 108);
    const std::vector<double> ys = scaled.apply(in.pack(x, block_dim));
    const std::vector<double> yp = plain.apply(in.pack(x, block_dim));
    for (int c = 0; c < 2; ++c) {
        for (int i = 0; i < 16; ++i) {
            const u64 slot = out.slot_of(c, i / 4, i % 4);
            ASSERT_NEAR(ys[slot], scale[static_cast<std::size_t>(c)] *
                                      yp[slot],
                        1e-9);
        }
    }
}

TEST(Toeplitz, HomomorphicConvolutionEndToEnd)
{
    // Full pipeline at toy parameters: pack -> encrypt -> BSGS conv ->
    // decrypt -> unpack == reference convolution. Strided, so this also
    // exercises the single-shot multiplexed path (depth 1).
    CkksEnv& env = CkksEnv::shared();
    const u64 slots = env.ctx.slot_count();  // 1024 at toy params

    Conv2dSpec spec;
    spec.in_channels = 2;
    spec.out_channels = 4;
    spec.kernel_h = spec.kernel_w = 3;
    spec.stride = 2;
    spec.pad = 1;
    const TensorLayout in(2, 16, 16, 1);   // 512 logical slots
    const TensorLayout out = lin::conv_output_layout(spec, in);
    ASSERT_LE(out.total_slots(), slots);

    const std::vector<double> weights =
        random_weights(spec.weight_count(), 109);
    const BlockedMatrix m =
        lin::build_conv_matrix(spec, weights, in, out, slots);
    const lin::BlockedPlan plan = lin::BlockedPlan::build(m);

    ckks::GaloisKeys keys =
        env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);

    const int level = 3;
    const lin::HeBlockedMatrix he(
        env.ctx, env.encoder, m, plan, level,
        static_cast<double>(env.ctx.q(level).value()));

    const std::vector<double> input = random_vector(2 * 16 * 16, 1.0, 110);
    const std::vector<ckks::Ciphertext> cts = {
        encrypt_vector(env, in.pack(input, slots), level)};
    const std::vector<ckks::Ciphertext> outs = he.apply(eval, cts);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].level(), level - 1);  // single-shot: depth 1

    const std::vector<double> got_slots = decrypt_vector(env, outs[0]);
    const std::vector<double> got = out.unpack(got_slots);
    const std::vector<double> expected =
        lin::conv2d_reference(spec, weights, input, 16, 16);
    EXPECT_LT(max_abs_diff(got, expected), 1e-2);
}

}  // namespace
}  // namespace orion::test
