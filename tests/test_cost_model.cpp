#include <gtest/gtest.h>

#include "src/core/cost_model.h"

namespace orion::core {
namespace {

TEST(CostModel, PrimitivesGrowWithLevel)
{
    const CostModel m = CostModel::paper_scale();
    for (int l = 2; l <= 16; ++l) {
        EXPECT_GT(m.pmult(l), m.pmult(l - 1)) << l;
        EXPECT_GT(m.rotation(l), m.rotation(l - 1)) << l;
        EXPECT_GT(m.hmult(l), m.hmult(l - 1)) << l;
    }
}

TEST(CostModel, HoistedRotationCheaperThanFull)
{
    const CostModel m = CostModel::paper_scale();
    for (int l : {1, 5, 10, 20}) {
        EXPECT_LT(m.rotation_hoisted(l), m.rotation(l)) << l;
        // Full = hoist + hoisted part, by construction.
        EXPECT_NEAR(m.rotation(l), m.hoist(l) + m.rotation_hoisted(l),
                    1e-12);
    }
}

TEST(CostModel, BootstrapSuperlinearInLeff)
{
    // Figure 1c: bootstrap latency strictly increases with L_eff and its
    // increments grow over coarse windows (locally they can dip a little
    // where the key-switch digit count steps discretely).
    const CostModel m = CostModel::paper_scale();
    for (int l_eff = 3; l_eff <= 16; ++l_eff) {
        EXPECT_GT(m.bootstrap(l_eff), m.bootstrap(l_eff - 1)) << l_eff;
    }
    const double low_inc = m.bootstrap(4) - m.bootstrap(2);
    const double high_inc = m.bootstrap(16) - m.bootstrap(14);
    EXPECT_GT(high_inc, 1.2 * low_inc);  // superlinear overall
}

TEST(CostModel, CalibrationMatchesMeasurement)
{
    CostModel m = CostModel::paper_scale();
    const double target = 0.025;  // pretend a rotation measured 25 ms
    m.calibrate(target, 10);
    EXPECT_NEAR(m.rotation(10), target, 1e-12);
    // Other levels scale proportionally (the model has one constant).
    EXPECT_GT(m.rotation(12), target);
    EXPECT_LT(m.rotation(5), target);
}

TEST(CostModel, BootstrapCalibrationMatchesMeasurement)
{
    // The measured-bootstrap calibration path (the BENCH_bootstrap.json
    // wall-clock is what the default constant was fitted against).
    CostModel m = CostModel::for_params(u64(1) << 16, 3, 3, 15);
    const double target = 37.8510701;  // the baseline's total, in seconds
    m.calibrate_bootstrap(target, 4);
    EXPECT_NEAR(m.bootstrap(4), target, 1e-9);
    // Uniform rescale: relative costs (placement inputs) are unchanged.
    CostModel fresh = CostModel::for_params(u64(1) << 16, 3, 3, 15);
    EXPECT_NEAR(m.rotation(10) / m.rotation(5),
                fresh.rotation(10) / fresh.rotation(5), 1e-12);
}

TEST(CostModel, DefaultConstantPricesPaperBootstrapClosely)
{
    // bench/baselines/BENCH_bootstrap.json measured 37.851 s at N = 2^16,
    // l_eff = 4, l_boot = 15; the recalibrated default must price it
    // within a few percent (it was ~1.9x under before the refit).
    const CostModel m = CostModel::for_params(u64(1) << 16, 3, 3, 15);
    const double measured = 37.8510701;
    EXPECT_NEAR(m.bootstrap(4), measured, 0.05 * measured);
}

TEST(CostModel, LinearLayerCostTracksPlanStats)
{
    const CostModel m = CostModel::paper_scale();
    PlanStats small;
    small.baby_rotations = 8;
    small.giant_rotations = 4;
    small.pmults = 50;
    small.hoists = 1;
    small.input_cts = small.output_cts = 1;
    PlanStats big = small;
    big.baby_rotations = 80;
    big.giant_rotations = 40;
    big.pmults = 500;
    big.hoists = 4;
    EXPECT_GT(m.linear_layer(big, 8), 5.0 * m.linear_layer(small, 8));
}

TEST(CostModel, ActivationCostScalesWithDegreeAndCts)
{
    const CostModel m = CostModel::paper_scale();
    const double one = m.activation({15}, 10, 1, false);
    const double composite = m.activation({15, 15, 27}, 10, 1, true);
    const double wide = m.activation({15}, 10, 8, false);
    // Later stages run at lower (cheaper) levels, so the composite costs
    // somewhat less than 3x a top-level stage but clearly more than one.
    EXPECT_GT(composite, 1.5 * one);
    EXPECT_LT(composite, 4.0 * one);
    EXPECT_NEAR(wide, 8.0 * one, 1e-9);
}

TEST(CostModel, LargerRingsCostMore)
{
    const CostModel small = CostModel::for_params(u64(1) << 13, 3, 3, 14);
    const CostModel big = CostModel::for_params(u64(1) << 16, 3, 3, 14);
    EXPECT_GT(big.rotation(10), 4.0 * small.rotation(10));
    EXPECT_GT(big.bootstrap(10), 4.0 * small.bootstrap(10));
}

}  // namespace
}  // namespace orion::core
