/**
 * @file
 * Bootstrap tests, in two tiers:
 *
 *  - OracleBootstrap*: the explicit decrypt/re-encrypt oracle fixture on
 *    the shared toy environment (chains too short for the real circuit).
 *  - Bootstrap*: the real public-key CoeffToSlot -> EvalMod ->
 *    SlotToCoeff circuit on a bootstrap-capable parameter point
 *    (CkksParams::bootstrap_toy, l_boot = 13 — the paper's Table-1
 *    shape), evaluated under Galois/relinearization keys only. Includes
 *    the >= 15-bit mean-precision assertion and 1/2/4-thread bit
 *    identity.
 */

#include <gtest/gtest.h>

#include <complex>

#include "src/core/config.h"
#include "src/core/thread_pool.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using ckks::Ciphertext;

// ---------------------------------------------------------------------
// Shared special-FFT stage machinery
// ---------------------------------------------------------------------

std::vector<std::complex<double>>
random_complex(u64 n, u64 seed)
{
    const std::vector<double> re = random_vector(n, 1.0, seed);
    const std::vector<double> im = random_vector(n, 1.0, seed + 1);
    std::vector<std::complex<double>> out(n);
    for (u64 i = 0; i < n; ++i) out[i] = {re[i], im[i]};
    return out;
}

void
bit_reverse_vec(std::vector<std::complex<double>>& v)
{
    const int bits = log2_exact(v.size());
    for (u64 i = 0; i < v.size(); ++i) {
        const u64 j = reverse_bits(static_cast<u32>(i), bits);
        if (i < j) std::swap(v[i], v[j]);
    }
}

TEST(SpecialFftStages, ForwardStageMatricesReproduceTheTransform)
{
    // FFT = (forward stage product) o bit_reverse: the matrices the
    // bootstrap encodes must be exactly the butterflies the encoder runs.
    const u64 degree = 64;
    const ckks::SpecialFft fft(degree);
    std::vector<std::complex<double>> x = random_complex(degree / 2, 11);

    std::vector<std::complex<double>> via_matrices = x;
    bit_reverse_vec(via_matrices);
    for (int s = 0; s < fft.num_stages(); ++s) {
        via_matrices = fft.forward_stage_matrix(s).apply(via_matrices);
    }
    std::vector<std::complex<double>> direct = x;
    fft.forward(direct.data());
    for (u64 i = 0; i < direct.size(); ++i) {
        EXPECT_NEAR(std::abs(direct[i] - via_matrices[i]), 0.0, 1e-9);
    }
}

TEST(SpecialFftStages, InverseStageMatricesInvertTheForward)
{
    // (inverse stage product) o FFT = n * bit_reverse — the identity the
    // CoeffToSlot/SlotToCoeff cancellation rests on.
    const u64 degree = 64;
    const u64 n = degree / 2;
    const ckks::SpecialFft fft(degree);
    const std::vector<std::complex<double>> x = random_complex(n, 13);

    std::vector<std::complex<double>> y = x;
    fft.forward(y.data());
    for (int s = 0; s < fft.num_stages(); ++s) {
        y = fft.inverse_stage_matrix(s).apply(y);
    }
    std::vector<std::complex<double>> expect = x;
    bit_reverse_vec(expect);
    for (u64 i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(y[i] - static_cast<double>(n) * expect[i]),
                    0.0, 1e-8);
    }
}

TEST(SpecialFftStages, CollapsedPlanStagesMatchSingleStages)
{
    // Collapsing stages into per-level products must not change the map.
    ckks::CkksParams params = ckks::CkksParams::bootstrap_toy();
    params.poly_degree = 64;
    const ckks::BootstrapPlan plan = ckks::BootstrapPlan::build(params);
    const ckks::SpecialFft fft(params.poly_degree);
    const u64 n = params.poly_degree / 2;
    const std::vector<std::complex<double>> x = random_complex(n, 17);

    std::vector<std::complex<double>> via_plan = x;
    for (const ckks::ComplexDiagMatrix& m : plan.cts_stages) {
        via_plan = m.apply(via_plan);
    }
    std::vector<std::complex<double>> via_stages = x;
    for (int s = 0; s < fft.num_stages(); ++s) {
        via_stages = fft.inverse_stage_matrix(s).apply(via_stages);
    }
    for (u64 i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(via_plan[i] - via_stages[i]), 0.0, 1e-8);
    }
}

// ---------------------------------------------------------------------
// The real public-key bootstrap circuit
// ---------------------------------------------------------------------

/**
 * A bootstrap-capable environment: 16-prime chain, sparse secret, and a
 * Galois bundle holding exactly the circuit's level-pruned requests.
 * Built once (keygen at these levels is the expensive part).
 */
struct BootEnv {
    ckks::CkksParams params;
    ckks::Context ctx;
    ckks::Encoder encoder;
    ckks::KeyGenerator keygen;
    ckks::PublicKey pk;
    ckks::KswitchKey relin;
    ckks::Bootstrapper boot;
    ckks::GaloisKeys galois;
    ckks::Encryptor encryptor;
    ckks::Decryptor decryptor;
    ckks::Evaluator eval;

    static constexpr int kLeff = 3;

    BootEnv()
        : params(ckks::CkksParams::bootstrap_toy(kLeff)), ctx(params),
          encoder(ctx), keygen(ctx, /*seed=*/7),
          pk(keygen.make_public_key()), relin(keygen.make_relin_key()),
          boot(ctx, encoder, kLeff),
          galois(make_circuit_galois(keygen, boot)), encryptor(ctx, pk),
          decryptor(ctx, keygen.secret_key()), eval(ctx, encoder)
    {
        eval.set_relin_key(&relin);
        eval.set_galois_keys(&galois);
    }

    static ckks::GaloisKeys
    make_circuit_galois(ckks::KeyGenerator& kg,
                        const ckks::Bootstrapper& b)
    {
        const std::vector<ckks::GaloisKeyRequest> requests =
            b.galois_requests();
        return kg.make_galois_keys(
            std::span<const ckks::GaloisKeyRequest>(requests),
            /*include_conjugation=*/true, b.conjugation_level());
    }

    static BootEnv&
    shared()
    {
        static BootEnv env;
        return env;
    }

    Ciphertext
    encrypt_at(const std::vector<double>& values, int level)
    {
        return encryptor.encrypt(
            encoder.encode(values, level, ctx.scale()));
    }

    std::vector<double>
    decrypt(const Ciphertext& ct)
    {
        return encoder.decode(decryptor.decrypt(ct));
    }
};

double
mean_abs_diff(const std::vector<double>& a, const std::vector<double>& b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sum += std::abs(a[i] - b[i]);
    }
    return sum / static_cast<double>(a.size());
}

TEST(Bootstrap, PlanShapeMatchesThePaper)
{
    BootEnv& env = BootEnv::shared();
    const ckks::BootstrapPlan& plan = env.boot.plan();
    // l_boot = 2 (CtS) + EvalMod + 2 (StC); paper Table 1 reports 13-15.
    EXPECT_EQ(plan.depth, env.boot.l_boot());
    EXPECT_GE(plan.depth, 12);
    EXPECT_LE(plan.depth, 15);
    EXPECT_EQ(plan.params.cts_levels, 2);
    EXPECT_EQ(plan.params.stc_levels, 2);
    EXPECT_GE(plan.eval_degree, 20);
    // The circuit must fit the chain above l_eff.
    EXPECT_LE(BootEnv::kLeff + plan.depth, env.ctx.max_level());
}

TEST(Bootstrap, PublicKeyRoundTripRaisesLevelWithin15Bits)
{
    BootEnv& env = BootEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 1.0, 21);
    const Ciphertext ct = env.encrypt_at(a, 0);

    const Ciphertext out = env.boot.bootstrap(env.eval, ct);
    EXPECT_EQ(out.level(), BootEnv::kLeff);
    EXPECT_DOUBLE_EQ(out.scale, env.ctx.scale());

    // >= 15 bits of mean slot precision across the full CtS -> EvalMod ->
    // StC round trip (the ISSUE's acceptance bar), and it must not be a
    // perfect identity (a real bootstrap adds approximation noise).
    const std::vector<double> got = env.decrypt(out);
    const double mean_err = mean_abs_diff(got, a);
    EXPECT_GT(mean_err, 0.0);
    const double precision_bits = -std::log2(mean_err);
    EXPECT_GE(precision_bits, 15.0)
        << "mean slot error " << mean_err << " (" << precision_bits
        << " bits)";
}

TEST(Bootstrap, SupportsFurtherComputation)
{
    BootEnv& env = BootEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 0.9, 23);
    Ciphertext ct = env.encrypt_at(a, 0);
    ct = env.boot.bootstrap(env.eval, ct);
    ct = env.eval.square(ct);
    env.eval.rescale_inplace(ct);
    const std::vector<double> out = env.decrypt(ct);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * a[i], 1e-3);
}

TEST(Bootstrap, AcceptsHigherLevelInputsAndCountsOps)
{
    BootEnv& env = BootEnv::shared();
    const std::vector<double> a =
        random_vector(env.ctx.slot_count(), 1.0, 25);
    const Ciphertext ct = env.encrypt_at(a, 2);
    env.ctx.counters().reset();
    ckks::BootstrapStats stats;
    const Ciphertext out = env.boot.bootstrap(env.eval, ct, &stats);
    EXPECT_EQ(env.ctx.counters().bootstrap, 1u);
    EXPECT_EQ(out.level(), BootEnv::kLeff);
    EXPECT_LT(mean_abs_diff(env.decrypt(out), a), 1e-4);
    // The split must attribute time to all three homomorphic stages.
    EXPECT_GT(stats.coeff_to_slot_s, 0.0);
    EXPECT_GT(stats.eval_mod_s, 0.0);
    EXPECT_GT(stats.slot_to_coeff_s, 0.0);
}

bool
polys_equal(const ckks::RnsPoly& a, const ckks::RnsPoly& b)
{
    if (a.level() != b.level() || a.num_limbs() != b.num_limbs()) {
        return false;
    }
    const u64 n = a.degree();
    for (int i = 0; i < a.num_limbs(); ++i) {
        const u64* la = a.limb(i);
        const u64* lb = b.limb(i);
        for (u64 j = 0; j < n; ++j) {
            if (la[j] != lb[j]) return false;
        }
    }
    return true;
}

TEST(Bootstrap, BitIdenticalAcrossThreadCounts)
{
    BootEnv& env = BootEnv::shared();
    const std::vector<double> a =
        random_vector(env.ctx.slot_count(), 1.0, 27);
    const Ciphertext ct = env.encrypt_at(a, 0);

    std::vector<Ciphertext> outs;
    for (int threads : {1, 2, 4}) {
        core::ScopedNumThreads scoped(threads);
        outs.push_back(env.boot.bootstrap(env.eval, ct));
    }
    for (std::size_t i = 1; i < outs.size(); ++i) {
        EXPECT_TRUE(polys_equal(outs[0].c0, outs[i].c0))
            << "c0 differs at thread variant " << i;
        EXPECT_TRUE(polys_equal(outs[0].c1, outs[i].c1))
            << "c1 differs at thread variant " << i;
        EXPECT_EQ(outs[0].scale, outs[i].scale);
    }
}

TEST(Bootstrap, RejectsChainsTooShortForTheCircuit)
{
    CkksEnv& toy = CkksEnv::shared();  // 6-level toy chain
    expect_throw_contains<Error>(
        [&] { ckks::Bootstrapper(toy.ctx, toy.encoder, /*l_eff=*/4); },
        "levels");
}

TEST(Bootstrap, RejectsMismatchedInputScale)
{
    BootEnv& env = BootEnv::shared();
    std::vector<double> a(env.ctx.slot_count(), 0.1);
    Ciphertext ct = env.encrypt_at(a, 0);
    ct.scale *= 1.01;  // outside the scales_match tolerance
    expect_throw_contains<Error>(
        [&] { (void)env.boot.bootstrap(env.eval, ct); },
        "input scale");
}

// ---------------------------------------------------------------------
// Level-pruned Galois keys
// ---------------------------------------------------------------------

TEST(PrunedGaloisKeys, RotationWorksAtOrBelowTheKeyLevel)
{
    BootEnv& env = BootEnv::shared();
    ckks::GaloisKeys pruned;
    pruned.keys.emplace(env.ctx.galois_elt(3),
                        env.keygen.make_galois_key(
                            env.ctx.galois_elt(3), /*level=*/5));
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&pruned);

    const std::vector<double> a =
        random_vector(env.ctx.slot_count(), 1.0, 31);
    const Ciphertext ct = env.encrypt_at(a, 5);
    const Ciphertext rot = eval.rotate(ct, 3);
    const std::vector<double> got =
        env.encoder.decode(env.decryptor.decrypt(rot));
    for (u64 i = 0; i + 16 < env.ctx.slot_count(); ++i) {
        EXPECT_NEAR(got[i], a[(i + 3) % env.ctx.slot_count()], 1e-4);
    }

    // Above the key's level the switch must refuse, not corrupt.
    const Ciphertext high = env.encrypt_at(a, 9);
    expect_throw_contains<Error>([&] { (void)eval.rotate(high, 3); },
                                 "pruned to level");
}

TEST(PrunedGaloisKeys, PruningShrinksTheBundle)
{
    BootEnv& env = BootEnv::shared();
    const std::vector<int> steps = {1, 2, 5, 8};
    ckks::GaloisKeys full = env.keygen.make_galois_keys(
        std::span<const int>(steps), /*include_conjugation=*/false);
    std::vector<ckks::GaloisKeyRequest> requests;
    for (int s : steps) requests.push_back({s, /*level=*/4});
    ckks::GaloisKeys pruned = env.keygen.make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(requests),
        /*include_conjugation=*/false);

    EXPECT_EQ(full.keys.size(), pruned.keys.size());
    // level 4 of a 19-limb chain: roughly (5 + 3) / (17 + 3) the limbs,
    // and fewer digits on top. Just assert a substantive shrink.
    EXPECT_LT(pruned.byte_size(), full.byte_size() / 2);
}

TEST(PrunedGaloisKeys, RequestMergeKeepsTheHighestLevel)
{
    BootEnv& env = BootEnv::shared();
    const std::vector<ckks::GaloisKeyRequest> requests = {
        {1, 3}, {1, 7}, {1, 5}};
    ckks::GaloisKeys keys = env.keygen.make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(requests), false);
    ASSERT_EQ(keys.keys.size(), 1u);
    EXPECT_EQ(keys.keys.begin()->second.level(), 7);
    // A full-chain request (-1) dominates any pruned one.
    const std::vector<ckks::GaloisKeyRequest> with_full = {
        {2, 3}, {2, -1}};
    ckks::GaloisKeys keys2 = env.keygen.make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(with_full), false);
    EXPECT_EQ(keys2.keys.begin()->second.level(), env.ctx.max_level());
}

// ---------------------------------------------------------------------
// The explicit oracle fixture (toy chains)
// ---------------------------------------------------------------------

TEST(OracleBootstrap, RaisesLevelToLeff)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 1);
    Ciphertext ct = encrypt_vector(env, a, 0);
    EXPECT_EQ(ct.level(), 0);
    const Ciphertext boosted = env.boot.bootstrap(ct);
    EXPECT_EQ(boosted.level(), env.boot.l_eff());
    EXPECT_GT(env.boot.l_eff(), 0);
    EXPECT_DOUBLE_EQ(boosted.scale, env.ctx.scale());
}

TEST(OracleBootstrap, PreservesMessageWithinPrecision)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 2);
    const Ciphertext ct = encrypt_vector(env, a, 0);
    ckks::OracleBootstrapper boot(env.ctx, env.encoder,
                                  env.keygen.secret_key());
    const Ciphertext boosted = boot.bootstrap(ct);
    const double err = max_abs_diff(decrypt_vector(env, boosted), a);
    EXPECT_LT(err, 1e-4);
    // The configured noise floor must actually be present: a bootstrap is
    // not a perfect identity.
    EXPECT_GT(err, 0.0);
}

TEST(OracleBootstrap, SupportsFurtherComputation)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 0.9, 3);
    Ciphertext ct = encrypt_vector(env, a, 0);
    ct = env.boot.bootstrap(ct);
    ct = env.eval.square(ct);
    env.eval.rescale_inplace(ct);
    const std::vector<double> out = decrypt_vector(env, ct);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * a[i], 1e-3);
}

TEST(OracleBootstrap, RejectsOutOfRangeInputs)
{
    CkksEnv& env = CkksEnv::shared();
    std::vector<double> a(env.ctx.slot_count(), 0.0);
    a[7] = 5.0;  // outside [-1, 1]
    const Ciphertext ct = encrypt_vector(env, a, 0);
    ckks::OracleBootstrapper boot(env.ctx, env.encoder,
                                  env.keygen.secret_key());
    EXPECT_THROW(boot.bootstrap(ct), Error);
}

TEST(OracleBootstrap, CountsOperations)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 4);
    const Ciphertext ct = encrypt_vector(env, a, 0);
    env.ctx.counters().reset();
    (void)env.boot.bootstrap(ct);
    EXPECT_EQ(env.ctx.counters().bootstrap, 1u);
}

TEST(OracleBootstrap, ConfigValidation)
{
    CkksEnv& env = CkksEnv::shared();
    ckks::OracleBootstrapConfig bad;
    bad.l_boot = env.ctx.max_level() + 5;
    EXPECT_THROW(ckks::OracleBootstrapper(env.ctx, env.encoder,
                                          env.keygen.secret_key(), bad),
                 Error);
}

}  // namespace
}  // namespace orion::test
