#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace orion::test {
namespace {

using ckks::Ciphertext;

TEST(Bootstrap, RaisesLevelToLeff)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 1);
    Ciphertext ct = encrypt_vector(env, a, 0);
    EXPECT_EQ(ct.level(), 0);
    const Ciphertext boosted = env.boot.bootstrap(ct);
    EXPECT_EQ(boosted.level(), env.boot.l_eff());
    EXPECT_GT(env.boot.l_eff(), 0);
    EXPECT_DOUBLE_EQ(boosted.scale, env.ctx.scale());
}

TEST(Bootstrap, PreservesMessageWithinPrecision)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 2);
    const Ciphertext ct = encrypt_vector(env, a, 0);
    ckks::Bootstrapper boot(env.ctx, env.encoder, env.keygen.secret_key());
    const Ciphertext boosted = boot.bootstrap(ct);
    const double err = max_abs_diff(decrypt_vector(env, boosted), a);
    EXPECT_LT(err, 1e-4);
    // The configured noise floor must actually be present: a bootstrap is
    // not a perfect identity.
    EXPECT_GT(err, 0.0);
}

TEST(Bootstrap, SupportsFurtherComputation)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 n = env.ctx.slot_count();
    const std::vector<double> a = random_vector(n, 0.9, 3);
    Ciphertext ct = encrypt_vector(env, a, 0);
    ct = env.boot.bootstrap(ct);
    ct = env.eval.square(ct);
    env.eval.rescale_inplace(ct);
    const std::vector<double> out = decrypt_vector(env, ct);
    for (u64 i = 0; i < n; ++i) EXPECT_NEAR(out[i], a[i] * a[i], 1e-3);
}

TEST(Bootstrap, RejectsOutOfRangeInputs)
{
    CkksEnv& env = CkksEnv::shared();
    std::vector<double> a(env.ctx.slot_count(), 0.0);
    a[7] = 5.0;  // outside [-1, 1]
    const Ciphertext ct = encrypt_vector(env, a, 0);
    ckks::Bootstrapper boot(env.ctx, env.encoder, env.keygen.secret_key());
    EXPECT_THROW(boot.bootstrap(ct), Error);
}

TEST(Bootstrap, CountsOperations)
{
    CkksEnv& env = CkksEnv::shared();
    const std::vector<double> a = random_vector(env.ctx.slot_count(), 1.0, 4);
    const Ciphertext ct = encrypt_vector(env, a, 0);
    env.ctx.counters().reset();
    (void)env.boot.bootstrap(ct);
    EXPECT_EQ(env.ctx.counters().bootstrap, 1u);
}

TEST(Bootstrap, ConfigValidation)
{
    CkksEnv& env = CkksEnv::shared();
    ckks::BootstrapConfig bad;
    bad.l_boot = env.ctx.max_level() + 5;
    EXPECT_THROW(ckks::Bootstrapper(env.ctx, env.encoder,
                                    env.keygen.secret_key(), bad),
                 Error);
}

}  // namespace
}  // namespace orion::test
