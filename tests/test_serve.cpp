#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "src/core/executor.h"
#include "src/nn/models.h"
#include "src/serve/serve.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using core::CompiledNetwork;
using nn::Network;
using serve::InferenceServer;
using serve::ServeClient;
using serve::ServeOptions;

/** Shared compiled program + prepared payloads (built once; read-only). */
struct ServeEnv {
    Network net;
    CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    ServeEnv()
        : net(nn::make_micro_mlp())
    {
        CkksEnv& env = CkksEnv::shared();
        core::CompileOptions opt;
        opt.slots = env.ctx.slot_count();
        opt.l_eff = 4;
        opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
        opt.calibration_samples = 3;
        opt.structural_only = false;
        cn = core::compile(net, opt);
        prepared =
            std::make_shared<const core::PreparedProgram>(cn, env.ctx);
    }

    static ServeEnv&
    shared()
    {
        static ServeEnv env;
        return env;
    }
};

ServeOptions
opts(int inflight, int capacity, bool paused = false)
{
    ServeOptions o;
    o.max_inflight = inflight;
    o.queue_capacity = capacity;
    o.start_paused = paused;
    return o;
}

// ---------------------------------------------------------------------
// Executor reuse (the pooling prerequisite)
// ---------------------------------------------------------------------

TEST(Serve, BackToBackRunsOnOneExecutorAgree)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor exec(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                            senv.prepared);
    const std::vector<double> x = random_vector(64, 1.0, 61);

    const core::ExecutionResult r1 = exec.run(x);
    const core::ExecutionResult r2 = exec.run(x);
    ASSERT_EQ(r1.output.size(), r2.output.size());
    // Fresh encryption noise differs per run; results agree to CKKS
    // precision and all deterministic stats match exactly.
    EXPECT_LT(max_abs_diff(r1.output, r2.output), 1e-3);
    EXPECT_EQ(r1.rotations, r2.rotations);
    EXPECT_EQ(r1.pmults, r2.pmults);
    EXPECT_EQ(r1.bootstraps, r2.bootstraps);
    EXPECT_EQ(r1.rotations, senv.cn.total_rotations);

    // Encrypted-domain reruns on the same instance as well.
    const std::vector<ckks::Ciphertext> in_cts = exec.encrypt_input(x);
    const core::EncryptedResult e1 = exec.run_encrypted(in_cts);
    const core::EncryptedResult e2 = exec.run_encrypted(in_cts);
    EXPECT_EQ(e1.rotations, e2.rotations);
    EXPECT_LT(max_abs_diff(exec.decrypt_output(e1.outputs),
                           exec.decrypt_output(e2.outputs)),
              1e-6);  // same input ciphertexts -> same encrypted outputs
}

// ---------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------

TEST(Serve, TwoSessionsEndToEndMatchDirectExecution)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();

    // Ground truth: a direct in-process self-keyed run.
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(senv.cn, env.ctx, opts(2, 8), senv.prepared);
    ServeClient alice(senv.cn, env.ctx, /*seed=*/100);
    ServeClient bob(senv.cn, env.ctx, /*seed=*/200);
    alice.set_session_id(server.register_session(alice.key_bundle()));
    bob.set_session_id(server.register_session(bob.key_bundle()));
    EXPECT_EQ(server.session_count(), 2u);
    EXPECT_NE(alice.session_id(), bob.session_id());

    const std::vector<double> xa = random_vector(64, 1.0, 71);
    const std::vector<double> xb = random_vector(64, 1.0, 72);
    const std::vector<double> want_a = direct.run(xa).output;
    const std::vector<double> want_b = direct.run(xb).output;

    // Both sessions in flight concurrently, through the full
    // serialize -> submit -> execute -> deserialize -> decrypt path.
    std::future<serve::ServeReply> fa = server.submit(alice.make_request(xa));
    std::future<serve::ServeReply> fb = server.submit(bob.make_request(xb));
    const serve::ServeReply ra = fa.get();
    const serve::ServeReply rb = fb.get();

    const std::vector<double> got_a = alice.decrypt_response(ra.response);
    const std::vector<double> got_b = bob.decrypt_response(rb.response);
    ASSERT_EQ(got_a.size(), want_a.size());
    ASSERT_EQ(got_b.size(), want_b.size());
    EXPECT_LT(max_abs_diff(got_a, want_a), 1e-3);
    EXPECT_LT(max_abs_diff(got_b, want_b), 1e-3);

    // Per-request stats.
    EXPECT_EQ(ra.stats.session_id, alice.session_id());
    EXPECT_EQ(ra.stats.rotations, senv.cn.total_rotations);
    EXPECT_EQ(ra.stats.bootstraps, 0u);
    EXPECT_GE(ra.stats.queue_wait_s, 0.0);
    EXPECT_GT(ra.stats.execute_s, 0.0);
    // Stats echoed on the wire match.
    const serve::Response parsed = alice.parse_response(ra.response);
    EXPECT_EQ(parsed.rotations, ra.stats.rotations);
    EXPECT_EQ(parsed.request_id, ra.stats.request_id);

    // Aggregates, server-level and per-session.
    EXPECT_EQ(server.session_requests(alice.session_id()), 1u);
    EXPECT_EQ(server.session_requests(bob.session_id()), 1u);
    EXPECT_EQ(server.session_requests(999), 0u);
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.total_rotations, 2 * senv.cn.total_rotations);
    EXPECT_LE(stats.peak_inflight, 2u);
    EXPECT_GE(stats.peak_inflight, 1u);
}

TEST(Serve, OneWorkerServesManySessionsByRebinding)
{
    // A single pooled executor must serve interleaved sessions correctly
    // (key rebinding between runs - the executor-reuse requirement).
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(senv.cn, env.ctx, opts(1, 8), senv.prepared);
    ServeClient alice(senv.cn, env.ctx, /*seed=*/101);
    ServeClient bob(senv.cn, env.ctx, /*seed=*/202);
    alice.set_session_id(server.register_session(alice.key_bundle()));
    bob.set_session_id(server.register_session(bob.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 73);
    const std::vector<double> want = direct.run(x).output;
    for (int round = 0; round < 2; ++round) {
        auto fa = server.submit(alice.make_request(x));
        auto fb = server.submit(bob.make_request(x));
        EXPECT_LT(max_abs_diff(alice.decrypt_response(fa.get().response),
                               want),
                  1e-3);
        EXPECT_LT(max_abs_diff(bob.decrypt_response(fb.get().response),
                               want),
                  1e-3);
    }
    EXPECT_EQ(server.stats().completed, 4u);
}

// ---------------------------------------------------------------------
// Scheduler admission and failure paths
// ---------------------------------------------------------------------

TEST(Serve, TrySubmitRejectsWhenQueueFull)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    // Paused workers: the queue fills deterministically.
    InferenceServer server(senv.cn, env.ctx,
                           opts(1, /*capacity=*/2, /*paused=*/true),
                           senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/103);
    client.set_session_id(server.register_session(client.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 74);
    auto f1 = server.try_submit(client.make_request(x));
    auto f2 = server.try_submit(client.make_request(x));
    auto f3 = server.try_submit(client.make_request(x));
    EXPECT_TRUE(f1.has_value());
    EXPECT_TRUE(f2.has_value());
    EXPECT_FALSE(f3.has_value());  // capacity 2: third is rejected
    EXPECT_EQ(server.stats().rejected, 1u);
    EXPECT_EQ(server.stats().peak_queue_depth, 2u);

    server.resume();
    EXPECT_NO_THROW(f1->get());
    EXPECT_NO_THROW(f2->get());
    EXPECT_EQ(server.stats().completed, 2u);
}

TEST(Serve, BlockingSubmitAppliesBackpressure)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx,
                           opts(1, /*capacity=*/1, /*paused=*/true),
                           senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/104);
    client.set_session_id(server.register_session(client.key_bundle()));
    const std::vector<double> x = random_vector(64, 1.0, 75);

    auto f1 = server.submit(client.make_request(x));
    // The queue is full; the next submit must block until resume() lets
    // the worker drain it.
    std::future<serve::ServeReply> f2;
    std::thread submitter([&] {
        f2 = server.submit(client.make_request(x));
    });
    server.resume();
    submitter.join();
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());
    EXPECT_EQ(server.stats().completed, 2u);
    EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(Serve, UnknownSessionFailsTheRequest)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/105);
    client.set_session_id(777);  // never registered

    auto fut = server.submit(client.make_request(random_vector(64, 1.0, 76)));
    EXPECT_THROW(fut.get(), Error);
    EXPECT_EQ(server.stats().failed, 1u);
    EXPECT_EQ(server.stats().completed, 0u);
}

TEST(Serve, MalformedRequestFailsCleanly)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);

    ckks::serial::Bytes garbage = {1, 2, 3, 4, 5};
    auto fut = server.submit(std::move(garbage));
    EXPECT_THROW(fut.get(), Error);
    EXPECT_EQ(server.stats().failed, 1u);
}

TEST(Serve, MismatchedParameterBundleRejected)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);

    // A bundle from an incompatible ring must be rejected at registration.
    ckks::CkksParams other = ckks::CkksParams::toy();
    other.num_scale_primes += 1;
    serve::KeyBundle bundle;
    bundle.params = other;
    ckks::KeyGenerator keygen(env.ctx, 9);
    bundle.relin = keygen.make_relin_key();
    EXPECT_THROW(server.register_session(serve::encode_key_bundle(bundle)),
                 Error);

    // Unregistering a never-registered id is also an error.
    EXPECT_THROW(server.unregister_session(42), Error);
}

TEST(Serve, ServerShutdownFailsPendingRequests)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    std::future<serve::ServeReply> orphan;
    {
        InferenceServer server(senv.cn, env.ctx,
                               opts(1, 4, /*paused=*/true), senv.prepared);
        ServeClient client(senv.cn, env.ctx, /*seed=*/106);
        client.set_session_id(server.register_session(client.key_bundle()));
        orphan =
            server.submit(client.make_request(random_vector(64, 1.0, 77)));
        // Destructor runs with the request still queued (workers paused).
    }
    EXPECT_THROW(orphan.get(), Error);
}

TEST(Serve, ConcurrentMixedSessionsUnderLoad)
{
    // The sanitizer-job stress: several sessions, more requests than
    // workers, futures resolved out of order.
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(senv.cn, env.ctx, opts(2, 16), senv.prepared);
    const int kClients = 3;
    const int kRequestsEach = 2;
    std::vector<std::unique_ptr<ServeClient>> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.push_back(std::make_unique<ServeClient>(
            senv.cn, env.ctx, /*seed=*/300 + static_cast<u64>(c)));
        clients.back()->set_session_id(
            server.register_session(clients.back()->key_bundle()));
    }

    std::vector<std::vector<double>> inputs;
    std::vector<std::vector<double>> want;
    std::vector<std::future<serve::ServeReply>> futures;
    std::vector<int> owner;
    for (int r = 0; r < kRequestsEach; ++r) {
        for (int c = 0; c < kClients; ++c) {
            inputs.push_back(random_vector(64, 1.0,
                                           800 + static_cast<u64>(r * 8 + c)));
            want.push_back(direct.run(inputs.back()).output);
            futures.push_back(
                server.submit(clients[static_cast<std::size_t>(c)]
                                  ->make_request(inputs.back())));
            owner.push_back(c);
        }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::ServeReply reply = futures[i].get();
        const std::vector<double> got =
            clients[static_cast<std::size_t>(owner[i])]->decrypt_response(
                reply.response);
        EXPECT_LT(max_abs_diff(got, want[i]), 1e-3) << "request " << i;
    }
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed,
              static_cast<u64>(kClients * kRequestsEach));
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(stats.peak_inflight, 2u);
}

// ---------------------------------------------------------------------
// Serving bootstrap programs (the public-key circuit)
// ---------------------------------------------------------------------

/**
 * A bootstrap-capable serving environment: the micro MLP compiled at
 * l_eff = 2, which is one level short of its depth, so placement is
 * forced to insert a bootstrap — served through the real public-key
 * CoeffToSlot -> EvalMod -> SlotToCoeff circuit.
 */
struct BootServeEnv {
    static constexpr int kLeff = 2;

    ckks::CkksParams params;
    ckks::Context ctx;
    Network net;
    CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    BootServeEnv()
        : params(ckks::CkksParams::bootstrap_toy(kLeff)), ctx(params),
          net(nn::make_micro_mlp())
    {
        core::CompileOptions opt;
        opt.slots = ctx.slot_count();
        opt.l_eff = kLeff;
        opt.cost = core::CostModel::for_params(ctx.degree(), 3, 3, 13);
        opt.calibration_samples = 3;
        opt.structural_only = false;
        cn = core::compile(net, opt);
        prepared = std::make_shared<const core::PreparedProgram>(cn, ctx);
    }

    static BootServeEnv&
    shared()
    {
        static BootServeEnv env;
        return env;
    }
};

TEST(ServeBootstrap, BootstrapProgramServedUnderClientKeysOnly)
{
    // The ISSUE's acceptance test: an InferenceServer executes a program
    // containing a bootstrap using only the client's evaluation-key
    // bundle — no SecretKey is reachable from the serving path — and the
    // decrypted logits argmax-match the cleartext execution.
    BootServeEnv& senv = BootServeEnv::shared();
    ASSERT_GE(senv.cn.num_bootstraps, 1u);
    ASSERT_TRUE(senv.prepared->bootstrap_supported());

    InferenceServer server(senv.cn, senv.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, senv.ctx, /*seed=*/300);
    client.set_session_id(server.register_session(client.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 91);
    std::future<serve::ServeReply> fut = server.submit(client.make_request(x));
    const serve::ServeReply reply = fut.get();
    EXPECT_GE(reply.stats.bootstraps, 1u);

    const std::vector<double> got = client.decrypt_response(reply.response);
    const std::vector<double> clear = senv.net.forward(x);
    ASSERT_EQ(got.size(), clear.size());
    std::size_t ig = 0, ic = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] > got[ig]) ig = i;
        if (clear[i] > clear[ic]) ic = i;
    }
    EXPECT_EQ(ig, ic) << "served argmax diverges from cleartext";
    EXPECT_LT(max_abs_diff(got, clear), 5e-2);

    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.total_bootstraps, senv.cn.num_bootstraps);
}

TEST(ServeBootstrap, RegistrationRejectsBundleMissingBootstrapKeys)
{
    // A bundle holding only the linear layers' rotation keys (no
    // bootstrap-circuit steps, no conjugation) must be rejected at
    // registration, naming what is missing.
    BootServeEnv& senv = BootServeEnv::shared();
    InferenceServer server(senv.cn, senv.ctx, opts(1, 4), senv.prepared);

    ckks::KeyGenerator keygen(senv.ctx, /*seed=*/77);
    serve::KeyBundle bundle;
    bundle.params = senv.params;
    bundle.relin = keygen.make_relin_key();
    std::vector<ckks::GaloisKeyRequest> program_only;
    for (const CompiledNetwork::RotationUse& use :
         senv.cn.required_rotations()) {
        program_only.push_back({use.step, use.level});
    }
    bundle.galois = keygen.make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(program_only), false);
    // Rejection names the offending step — either outright missing, or
    // present for a program rotation but pruned below the (nearly
    // full-chain) level the bootstrap circuit rotates at.
    const ckks::serial::Bytes bytes = serve::encode_key_bundle(bundle);
    expect_throw_contains<Error>(
        [&] { (void)server.register_session(bytes); },
        "Galois key for");
}

TEST(ServeBootstrap, ShallowContextRejectionNamesTheInstruction)
{
    // A bootstrap-bearing program on a chain too short for the circuit
    // must be rejected at server construction with the offending
    // instruction kind and layer id in the message.
    CkksEnv& env = CkksEnv::shared();
    core::CompileOptions opt;
    opt.slots = env.ctx.slot_count();
    opt.l_eff = 2;  // depth-3 micro MLP: forces a bootstrap
    opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
    opt.calibration_samples = 3;
    opt.structural_only = false;
    const Network net = nn::make_micro_mlp();
    const CompiledNetwork cn = core::compile(net, opt);
    ASSERT_GE(cn.num_bootstraps, 1u);

    auto prepared =
        std::make_shared<const core::PreparedProgram>(cn, env.ctx);
    EXPECT_FALSE(prepared->bootstrap_supported());
    expect_throw_contains<Error>(
        [&] { InferenceServer server(cn, env.ctx, opts(1, 4), prepared); },
        "kBootstrap (layer");
}

}  // namespace
}  // namespace orion::test
