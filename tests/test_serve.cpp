#include <gtest/gtest.h>

#include <future>
#include <map>
#include <sstream>
#include <thread>

#include "src/core/telemetry.h"

#include "src/core/executor.h"
#include "src/core/thread_pool.h"
#include "src/nn/models.h"
#include "src/serve/serve.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using core::CompiledNetwork;
using nn::Network;
using serve::InferenceServer;
using serve::ServeClient;
using serve::ServeOptions;

/** Shared compiled program + prepared payloads (built once; read-only). */
struct ServeEnv {
    Network net;
    CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    ServeEnv()
        : net(nn::make_micro_mlp())
    {
        CkksEnv& env = CkksEnv::shared();
        core::CompileOptions opt;
        opt.slots = env.ctx.slot_count();
        opt.l_eff = 4;
        opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
        opt.calibration_samples = 3;
        opt.structural_only = false;
        cn = core::compile(net, opt);
        prepared =
            std::make_shared<const core::PreparedProgram>(cn, env.ctx);
    }

    static ServeEnv&
    shared()
    {
        static ServeEnv env;
        return env;
    }
};

ServeOptions
opts(int inflight, int capacity, bool paused = false)
{
    ServeOptions o;
    o.max_inflight = inflight;
    o.queue_capacity = capacity;
    o.start_paused = paused;
    return o;
}

// ---------------------------------------------------------------------
// Executor reuse (the pooling prerequisite)
// ---------------------------------------------------------------------

TEST(Serve, BackToBackRunsOnOneExecutorAgree)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor exec(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                            senv.prepared);
    const std::vector<double> x = random_vector(64, 1.0, 61);

    const core::ExecutionResult r1 = exec.run(x);
    const core::ExecutionResult r2 = exec.run(x);
    ASSERT_EQ(r1.output.size(), r2.output.size());
    // Fresh encryption noise differs per run; results agree to CKKS
    // precision and all deterministic stats match exactly.
    EXPECT_LT(max_abs_diff(r1.output, r2.output), 1e-3);
    EXPECT_EQ(r1.rotations, r2.rotations);
    EXPECT_EQ(r1.pmults, r2.pmults);
    EXPECT_EQ(r1.bootstraps, r2.bootstraps);
    EXPECT_EQ(r1.rotations, senv.cn.total_rotations);

    // Encrypted-domain reruns on the same instance as well.
    const std::vector<ckks::Ciphertext> in_cts = exec.encrypt_input(x);
    const core::EncryptedResult e1 = exec.run_encrypted(in_cts);
    const core::EncryptedResult e2 = exec.run_encrypted(in_cts);
    EXPECT_EQ(e1.rotations, e2.rotations);
    EXPECT_LT(max_abs_diff(exec.decrypt_output(e1.outputs),
                           exec.decrypt_output(e2.outputs)),
              1e-6);  // same input ciphertexts -> same encrypted outputs
}

// ---------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------

TEST(Serve, TwoSessionsEndToEndMatchDirectExecution)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();

    // Ground truth: a direct in-process self-keyed run.
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(senv.cn, env.ctx, opts(2, 8), senv.prepared);
    ServeClient alice(senv.cn, env.ctx, /*seed=*/100);
    ServeClient bob(senv.cn, env.ctx, /*seed=*/200);
    alice.set_session_id(server.register_session(alice.key_bundle()));
    bob.set_session_id(server.register_session(bob.key_bundle()));
    EXPECT_EQ(server.session_count(), 2u);
    EXPECT_NE(alice.session_id(), bob.session_id());

    const std::vector<double> xa = random_vector(64, 1.0, 71);
    const std::vector<double> xb = random_vector(64, 1.0, 72);
    const std::vector<double> want_a = direct.run(xa).output;
    const std::vector<double> want_b = direct.run(xb).output;

    // Both sessions in flight concurrently, through the full
    // serialize -> submit -> execute -> deserialize -> decrypt path.
    std::future<serve::ServeReply> fa = server.submit(alice.make_request(xa));
    std::future<serve::ServeReply> fb = server.submit(bob.make_request(xb));
    const serve::ServeReply ra = fa.get();
    const serve::ServeReply rb = fb.get();

    const std::vector<double> got_a = alice.decrypt_response(ra.response);
    const std::vector<double> got_b = bob.decrypt_response(rb.response);
    ASSERT_EQ(got_a.size(), want_a.size());
    ASSERT_EQ(got_b.size(), want_b.size());
    EXPECT_LT(max_abs_diff(got_a, want_a), 1e-3);
    EXPECT_LT(max_abs_diff(got_b, want_b), 1e-3);

    // Per-request stats.
    EXPECT_EQ(ra.stats.session_id, alice.session_id());
    EXPECT_EQ(ra.stats.rotations, senv.cn.total_rotations);
    EXPECT_EQ(ra.stats.bootstraps, 0u);
    EXPECT_GE(ra.stats.queue_wait_s, 0.0);
    EXPECT_GT(ra.stats.execute_s, 0.0);
    // Stats echoed on the wire match.
    const serve::Response parsed = alice.parse_response(ra.response);
    EXPECT_EQ(parsed.rotations, ra.stats.rotations);
    EXPECT_EQ(parsed.request_id, ra.stats.request_id);

    // Aggregates, server-level and per-session. Unknown ids report
    // nullopt, distinct from a live session that has served nothing.
    EXPECT_EQ(server.session_requests(alice.session_id()), 1u);
    EXPECT_EQ(server.session_requests(bob.session_id()), 1u);
    EXPECT_EQ(server.session_requests(999), std::nullopt);
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.total_rotations, 2 * senv.cn.total_rotations);
    EXPECT_LE(stats.peak_inflight, 2u);
    EXPECT_GE(stats.peak_inflight, 1u);
}

TEST(Serve, OneWorkerServesManySessionsByRebinding)
{
    // A single pooled executor must serve interleaved sessions correctly
    // (key rebinding between runs - the executor-reuse requirement).
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(senv.cn, env.ctx, opts(1, 8), senv.prepared);
    ServeClient alice(senv.cn, env.ctx, /*seed=*/101);
    ServeClient bob(senv.cn, env.ctx, /*seed=*/202);
    alice.set_session_id(server.register_session(alice.key_bundle()));
    bob.set_session_id(server.register_session(bob.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 73);
    const std::vector<double> want = direct.run(x).output;
    for (int round = 0; round < 2; ++round) {
        auto fa = server.submit(alice.make_request(x));
        auto fb = server.submit(bob.make_request(x));
        EXPECT_LT(max_abs_diff(alice.decrypt_response(fa.get().response),
                               want),
                  1e-3);
        EXPECT_LT(max_abs_diff(bob.decrypt_response(fb.get().response),
                               want),
                  1e-3);
    }
    EXPECT_EQ(server.stats().completed, 4u);
}

// ---------------------------------------------------------------------
// Scheduler admission and failure paths
// ---------------------------------------------------------------------

TEST(Serve, TrySubmitRejectsWhenQueueFull)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    // Paused workers: the queue fills deterministically.
    InferenceServer server(senv.cn, env.ctx,
                           opts(1, /*capacity=*/2, /*paused=*/true),
                           senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/103);
    client.set_session_id(server.register_session(client.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 74);
    auto f1 = server.try_submit(client.make_request(x));
    auto f2 = server.try_submit(client.make_request(x));
    auto f3 = server.try_submit(client.make_request(x));
    EXPECT_TRUE(f1.has_value());
    EXPECT_TRUE(f2.has_value());
    EXPECT_FALSE(f3.has_value());  // capacity 2: third is rejected
    EXPECT_EQ(server.stats().rejected, 1u);
    // A rejected attempt still counts as submitted, so the ledger
    // balances: completed + failed + rejected == submitted.
    EXPECT_EQ(server.stats().submitted, 3u);
    EXPECT_EQ(server.stats().peak_queue_depth, 2u);

    server.resume();
    EXPECT_NO_THROW(f1->get());
    EXPECT_NO_THROW(f2->get());
    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.completed + s.failed + s.rejected, s.submitted);
}

TEST(Serve, BlockingSubmitAppliesBackpressure)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx,
                           opts(1, /*capacity=*/1, /*paused=*/true),
                           senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/104);
    client.set_session_id(server.register_session(client.key_bundle()));
    const std::vector<double> x = random_vector(64, 1.0, 75);

    auto f1 = server.submit(client.make_request(x));
    // The queue is full; the next submit must block until resume() lets
    // the worker drain it.
    std::future<serve::ServeReply> f2;
    std::thread submitter([&] {
        f2 = server.submit(client.make_request(x));
    });
    server.resume();
    submitter.join();
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());
    EXPECT_EQ(server.stats().completed, 2u);
    EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(Serve, UnknownSessionFailsTheRequest)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/105);
    client.set_session_id(777);  // never registered

    auto fut = server.submit(client.make_request(random_vector(64, 1.0, 76)));
    EXPECT_THROW(fut.get(), Error);
    EXPECT_EQ(server.stats().failed, 1u);
    EXPECT_EQ(server.stats().completed, 0u);
}

TEST(Serve, MalformedRequestFailsCleanly)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);

    ckks::serial::Bytes garbage = {1, 2, 3, 4, 5};
    auto fut = server.submit(std::move(garbage));
    EXPECT_THROW(fut.get(), Error);
    EXPECT_EQ(server.stats().failed, 1u);
}

TEST(Serve, MismatchedParameterBundleRejected)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);

    // A bundle from an incompatible ring must be rejected at registration.
    ckks::CkksParams other = ckks::CkksParams::toy();
    other.num_scale_primes += 1;
    serve::KeyBundle bundle;
    bundle.params = other;
    ckks::KeyGenerator keygen(env.ctx, 9);
    bundle.relin = keygen.make_relin_key();
    EXPECT_THROW(server.register_session(serve::encode_key_bundle(bundle)),
                 Error);

    // Unregistering a never-registered id is not an error, just false.
    EXPECT_FALSE(server.unregister_session(42));
}

TEST(Serve, LegacyV2KeyBundleStillRegistersAndServes)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);

    // Re-encode a current client's bundle in the v2 layout (explicit key
    // digits, version-2 frame) — what a pre-seed-compression client sent.
    ServeClient client(senv.cn, env.ctx, /*seed=*/402);
    const ckks::serial::Bytes v3 = client.key_bundle();
    const serve::KeyBundle bundle = serve::decode_key_bundle(v3, env.ctx);
    ckks::serial::ByteWriter w;
    ckks::serial::write_params(w, bundle.params);
    ckks::serial::write_kswitch_key(w, bundle.relin, /*version=*/2);
    ckks::serial::write_galois_keys(w, bundle.galois, /*version=*/2);
    const ckks::serial::Bytes v2 = ckks::serial::finish_record(
        ckks::serial::RecordKind::kKeyBundle, std::move(w), /*version=*/2);
    // The seed-compressed bundle is the acceptance win: <= 60% of v2.
    EXPECT_LE(v3.size() * 10, v2.size() * 6)
        << "v3 " << v3.size() << " bytes vs v2 " << v2.size();

    client.set_session_id(server.register_session(v2));
    const std::vector<double> x = random_vector(64, 1.0, 83);
    const std::vector<double> want = direct.run(x).output;
    auto fut = server.submit(client.make_request(x));
    EXPECT_LT(max_abs_diff(client.decrypt_response(fut.get().response),
                           want),
              1e-3);
}

TEST(Serve, UnregisterIsIdempotent)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/107);
    const u64 id = server.register_session(client.key_bundle());

    EXPECT_EQ(server.session_count(), 1u);
    EXPECT_TRUE(server.unregister_session(id));
    EXPECT_EQ(server.session_count(), 0u);
    // A duplicate unregister (client retry, double-close) is a no-op.
    EXPECT_FALSE(server.unregister_session(id));
    EXPECT_EQ(server.session_requests(id), std::nullopt);
}

TEST(Serve, ServerShutdownFailsPendingRequests)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    std::future<serve::ServeReply> orphan;
    {
        InferenceServer server(senv.cn, env.ctx,
                               opts(1, 4, /*paused=*/true), senv.prepared);
        ServeClient client(senv.cn, env.ctx, /*seed=*/106);
        client.set_session_id(server.register_session(client.key_bundle()));
        orphan =
            server.submit(client.make_request(random_vector(64, 1.0, 77)));
        // Destructor runs with the request still queued (workers paused).
    }
    EXPECT_THROW(orphan.get(), Error);
}

TEST(Serve, ConcurrentMixedSessionsUnderLoad)
{
    // The sanitizer-job stress: several sessions, more requests than
    // workers, futures resolved out of order.
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(senv.cn, env.ctx, opts(2, 16), senv.prepared);
    const int kClients = 3;
    const int kRequestsEach = 2;
    std::vector<std::unique_ptr<ServeClient>> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.push_back(std::make_unique<ServeClient>(
            senv.cn, env.ctx, /*seed=*/300 + static_cast<u64>(c)));
        clients.back()->set_session_id(
            server.register_session(clients.back()->key_bundle()));
    }

    std::vector<std::vector<double>> inputs;
    std::vector<std::vector<double>> want;
    std::vector<std::future<serve::ServeReply>> futures;
    std::vector<int> owner;
    for (int r = 0; r < kRequestsEach; ++r) {
        for (int c = 0; c < kClients; ++c) {
            inputs.push_back(random_vector(64, 1.0,
                                           800 + static_cast<u64>(r * 8 + c)));
            want.push_back(direct.run(inputs.back()).output);
            futures.push_back(
                server.submit(clients[static_cast<std::size_t>(c)]
                                  ->make_request(inputs.back())));
            owner.push_back(c);
        }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::ServeReply reply = futures[i].get();
        const std::vector<double> got =
            clients[static_cast<std::size_t>(owner[i])]->decrypt_response(
                reply.response);
        EXPECT_LT(max_abs_diff(got, want[i]), 1e-3) << "request " << i;
    }
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed,
              static_cast<u64>(kClients * kRequestsEach));
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(stats.peak_inflight, 2u);
}

// ---------------------------------------------------------------------
// Bounded key cache: eviction + churn through the full serving path
// ---------------------------------------------------------------------

TEST(Serve, BoundedKeyCacheEvictsAndReloadsUnderChurn)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    ServeOptions o = opts(2, 32);
    o.key_cache_mb = 1;
    InferenceServer server(senv.cn, env.ctx, o, senv.prepared);

    // One client, many sessions: registering the same bundle bytes under
    // fresh ids is exactly what a reconnecting client does, and it keeps
    // the test cheap (one keygen). Size the session count so the
    // registered total overflows the 1 MiB cap.
    ServeClient client(senv.cn, env.ctx, /*seed=*/400);
    const ckks::serial::Bytes bundle = client.key_bundle();
    const serve::KeyBundle decoded =
        serve::decode_key_bundle(bundle, env.ctx);
    const std::size_t per_bundle =
        decoded.relin.byte_size() + decoded.galois.byte_size();
    const std::size_t cap = std::size_t{1} << 20;
    const int overflow = static_cast<int>(cap / per_bundle) + 2;
    ASSERT_LE(overflow, 64) << "toy bundles grew too small for this test";

    std::vector<u64> ids;
    for (int i = 0; i < overflow; ++i) {
        ids.push_back(server.register_session(bundle));
    }
    // Registration alone must already have spilled: more key bytes were
    // put than the cache may keep resident.
    {
        const serve::ServerStats s = server.stats();
        EXPECT_GE(s.key_cache_evictions, 1u);
        EXPECT_LE(s.key_resident_bytes, cap);
        EXPECT_GT(s.key_disk_bytes, 0u);
    }

    // Round-robin requests over every session: the worst case for LRU,
    // so evicted sessions reload from their spill files mid-request.
    const std::vector<double> x = random_vector(64, 1.0, 81);
    const std::vector<double> want = direct.run(x).output;
    std::vector<ckks::serial::Bytes> requests;
    for (const u64 id : ids) {
        client.set_session_id(id);
        requests.push_back(client.make_request(x));
    }
    std::vector<std::future<serve::ServeReply>> futs;
    for (ckks::serial::Bytes& r : requests) {
        futs.push_back(server.submit(std::move(r)));
    }
    for (std::future<serve::ServeReply>& f : futs) {
        EXPECT_LT(max_abs_diff(client.decrypt_response(f.get().response),
                               want),
                  1e-3);
    }

    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.completed, static_cast<u64>(overflow));
    // Every completed request acquired its keys exactly once.
    EXPECT_EQ(s.key_cache_hits + s.key_cache_misses, s.completed);
    // Reloaded keys decrypted correctly above, so the spill round-trip is
    // bit-compatible; residency stayed within the cap throughout.
    EXPECT_GE(s.key_cache_misses, 1u);
    EXPECT_LE(s.key_resident_bytes, cap);

    // Unregister half the sessions; their spill bytes go away, the rest
    // keep serving.
    for (std::size_t i = 0; i < ids.size(); i += 2) {
        EXPECT_TRUE(server.unregister_session(ids[i]));
    }
    client.set_session_id(ids[1]);
    EXPECT_NO_THROW(server.submit(client.make_request(x)).get());
}

TEST(Serve, ConcurrentChurnKeepsInFlightRequestsSafe)
{
    // Register/unregister churn racing in-flight requests: an in-flight
    // request that already resolved its session must complete even if the
    // session is unregistered under it (pinned lease), later requests for
    // the dead id fail cleanly, and the stats ledger balances. Run under
    // ASan this also proves the executor never sees dangling key
    // pointers (they are unbound on every exit path).
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();

    ServeOptions o = opts(2, 64);
    o.key_cache_mb = 1;
    InferenceServer server(senv.cn, env.ctx, o, senv.prepared);

    ServeClient client(senv.cn, env.ctx, /*seed=*/401);
    const ckks::serial::Bytes bundle = client.key_bundle();
    const u64 stable = server.register_session(bundle);
    const u64 victim = server.register_session(bundle);

    const std::vector<double> x = random_vector(64, 1.0, 82);
    client.set_session_id(stable);
    const ckks::serial::Bytes stable_req = client.make_request(x);
    client.set_session_id(victim);
    const ckks::serial::Bytes victim_req = client.make_request(x);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 2;
    std::vector<std::future<serve::ServeReply>> stable_futs(
        kThreads * kPerThread);
    std::vector<std::future<serve::ServeReply>> victim_futs(
        kThreads * kPerThread);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const int slot = t * kPerThread + i;
                stable_futs[static_cast<std::size_t>(slot)] =
                    server.submit(ckks::serial::Bytes(stable_req));
                victim_futs[static_cast<std::size_t>(slot)] =
                    server.submit(ckks::serial::Bytes(victim_req));
            }
        });
    }
    // Churn the victim session while submissions and executions race.
    EXPECT_TRUE(server.unregister_session(victim));
    EXPECT_FALSE(server.unregister_session(victim));
    for (std::thread& t : submitters) t.join();

    // Stable-session requests all succeed; victim requests either ran
    // before the unregister (pinned lease) or failed as unknown — both
    // are correct, crashing or corrupting is not.
    u64 victim_ok = 0, victim_failed = 0;
    for (std::future<serve::ServeReply>& f : stable_futs) {
        EXPECT_NO_THROW(f.get());
    }
    for (std::future<serve::ServeReply>& f : victim_futs) {
        try {
            f.get();
            victim_ok += 1;
        } catch (const Error&) {
            victim_failed += 1;
        }
    }
    EXPECT_EQ(victim_ok + victim_failed,
              static_cast<u64>(kThreads * kPerThread));

    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed + s.failed + s.rejected, s.submitted);
    EXPECT_EQ(s.completed,
              static_cast<u64>(kThreads * kPerThread) + victim_ok);
    EXPECT_EQ(s.failed, victim_failed);
    EXPECT_EQ(server.session_count(), 1u);
}

// ---------------------------------------------------------------------
// Serving bootstrap programs (the public-key circuit)
// ---------------------------------------------------------------------

/**
 * A bootstrap-capable serving environment: the micro MLP compiled at
 * l_eff = 2, which is one level short of its depth, so placement is
 * forced to insert a bootstrap — served through the real public-key
 * CoeffToSlot -> EvalMod -> SlotToCoeff circuit.
 */
struct BootServeEnv {
    static constexpr int kLeff = 2;

    ckks::CkksParams params;
    ckks::Context ctx;
    Network net;
    CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    BootServeEnv()
        : params(ckks::CkksParams::bootstrap_toy(kLeff)), ctx(params),
          net(nn::make_micro_mlp())
    {
        core::CompileOptions opt;
        opt.slots = ctx.slot_count();
        opt.l_eff = kLeff;
        opt.cost = core::CostModel::for_params(ctx.degree(), 3, 3, 13);
        opt.calibration_samples = 3;
        opt.structural_only = false;
        cn = core::compile(net, opt);
        prepared = std::make_shared<const core::PreparedProgram>(cn, ctx);
    }

    static BootServeEnv&
    shared()
    {
        static BootServeEnv env;
        return env;
    }
};

TEST(ServeBootstrap, BootstrapProgramServedUnderClientKeysOnly)
{
    // The ISSUE's acceptance test: an InferenceServer executes a program
    // containing a bootstrap using only the client's evaluation-key
    // bundle — no SecretKey is reachable from the serving path — and the
    // decrypted logits argmax-match the cleartext execution.
    BootServeEnv& senv = BootServeEnv::shared();
    ASSERT_GE(senv.cn.num_bootstraps, 1u);
    ASSERT_TRUE(senv.prepared->bootstrap_supported());

    InferenceServer server(senv.cn, senv.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, senv.ctx, /*seed=*/300);
    client.set_session_id(server.register_session(client.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 91);
    std::future<serve::ServeReply> fut = server.submit(client.make_request(x));
    const serve::ServeReply reply = fut.get();
    EXPECT_GE(reply.stats.bootstraps, 1u);

    const std::vector<double> got = client.decrypt_response(reply.response);
    const std::vector<double> clear = senv.net.forward(x);
    ASSERT_EQ(got.size(), clear.size());
    std::size_t ig = 0, ic = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] > got[ig]) ig = i;
        if (clear[i] > clear[ic]) ic = i;
    }
    EXPECT_EQ(ig, ic) << "served argmax diverges from cleartext";
    EXPECT_LT(max_abs_diff(got, clear), 5e-2);

    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.total_bootstraps, senv.cn.num_bootstraps);
}

TEST(ServeBootstrap, RegistrationRejectsBundleMissingBootstrapKeys)
{
    // A bundle holding only the linear layers' rotation keys (no
    // bootstrap-circuit steps, no conjugation) must be rejected at
    // registration, naming what is missing.
    BootServeEnv& senv = BootServeEnv::shared();
    InferenceServer server(senv.cn, senv.ctx, opts(1, 4), senv.prepared);

    ckks::KeyGenerator keygen(senv.ctx, /*seed=*/77);
    serve::KeyBundle bundle;
    bundle.params = senv.params;
    bundle.relin = keygen.make_relin_key();
    std::vector<ckks::GaloisKeyRequest> program_only;
    for (const CompiledNetwork::RotationUse& use :
         senv.cn.required_rotations()) {
        program_only.push_back({use.step, use.level});
    }
    bundle.galois = keygen.make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(program_only), false);
    // Rejection names the offending step — either outright missing, or
    // present for a program rotation but pruned below the (nearly
    // full-chain) level the bootstrap circuit rotates at.
    const ckks::serial::Bytes bytes = serve::encode_key_bundle(bundle);
    expect_throw_contains<Error>(
        [&] { (void)server.register_session(bytes); },
        "Galois key for");
}

TEST(ServeBootstrap, ShallowContextRejectionNamesTheInstruction)
{
    // A bootstrap-bearing program on a chain too short for the circuit
    // must be rejected at server construction with the offending
    // instruction kind and layer id in the message.
    CkksEnv& env = CkksEnv::shared();
    core::CompileOptions opt;
    opt.slots = env.ctx.slot_count();
    opt.l_eff = 2;  // depth-3 micro MLP: forces a bootstrap
    opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
    opt.calibration_samples = 3;
    opt.structural_only = false;
    const Network net = nn::make_micro_mlp();
    const CompiledNetwork cn = core::compile(net, opt);
    ASSERT_GE(cn.num_bootstraps, 1u);

    auto prepared =
        std::make_shared<const core::PreparedProgram>(cn, env.ctx);
    EXPECT_FALSE(prepared->bootstrap_supported());
    expect_throw_contains<Error>(
        [&] { InferenceServer server(cn, env.ctx, opts(1, 4), prepared); },
        "kBootstrap (layer");
}

// ---------------------------------------------------------------------
// Telemetry: failure attribution, /metrics exposition, span accounting
// ---------------------------------------------------------------------

/** The ErrorKind a failed future resolves to (kNone if it succeeded). */
serve::ErrorKind
failure_kind(std::future<serve::ServeReply>& fut)
{
    try {
        fut.get();
        return serve::ErrorKind::kNone;
    } catch (const serve::RequestError& e) {
        return e.kind();
    }
}

TEST(Serve, FailureKindsAttributedInLedger)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 8), senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/500);
    client.set_session_id(server.register_session(client.key_bundle()));
    const std::vector<double> x = random_vector(64, 1.0, 95);

    // decode_error: bytes that are not a Request frame at all.
    auto f_decode = server.submit(ckks::serial::Bytes{9, 9, 9, 9});
    // bad_session: a well-formed request naming an unregistered id.
    serve::Request bad = serve::decode_request(client.make_request(x),
                                               env.ctx);
    bad.session_id = 4242;
    auto f_session = server.submit(serve::encode_request(bad));
    // exec_error: valid session, decodable frame, but an input-ciphertext
    // count the program rejects at execution time.
    serve::Request empty = serve::decode_request(client.make_request(x),
                                                 env.ctx);
    empty.inputs.clear();
    auto f_exec = server.submit(serve::encode_request(empty));
    // And one success to prove the ledger splits cleanly.
    auto f_ok = server.submit(client.make_request(x));

    EXPECT_EQ(failure_kind(f_decode), serve::ErrorKind::kDecodeError);
    EXPECT_EQ(failure_kind(f_session), serve::ErrorKind::kBadSession);
    EXPECT_EQ(failure_kind(f_exec), serve::ErrorKind::kExecError);
    EXPECT_EQ(failure_kind(f_ok), serve::ErrorKind::kNone);

    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.failed, 3u);
    EXPECT_EQ(s.failed_bad_session, 1u);
    EXPECT_EQ(s.failed_decode, 1u);
    EXPECT_EQ(s.failed_exec, 1u);
    EXPECT_EQ(s.failed,
              s.failed_bad_session + s.failed_decode + s.failed_exec);
    EXPECT_EQ(s.completed + s.failed + s.rejected, s.submitted);
    EXPECT_STREQ(serve::to_string(serve::ErrorKind::kBadSession),
                 "bad_session");
}

/** Parses `name value` exposition lines (skipping # comments). */
std::map<std::string, double>
parse_prometheus(const std::string& text)
{
    std::map<std::string, double> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::size_t sp = line.rfind(' ');
        EXPECT_NE(sp, std::string::npos) << line;
        out[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
    }
    return out;
}

TEST(Serve, MetricsTextCrossChecksAgainstStats)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 8), senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/501);
    client.set_session_id(server.register_session(client.key_bundle()));
    const std::vector<double> x = random_vector(64, 1.0, 96);

    for (int i = 0; i < 3; ++i) {
        EXPECT_NO_THROW(server.submit(client.make_request(x)).get());
    }
    auto bad = server.submit(ckks::serial::Bytes{1, 2, 3});
    EXPECT_THROW(bad.get(), Error);

    const serve::ServerStats s = server.stats();
    const std::map<std::string, double> m =
        parse_prometheus(server.metrics_text());

    // The registry mirrors the ledger exactly.
    EXPECT_EQ(m.at("orion_serve_submitted_total"),
              static_cast<double>(s.submitted));
    EXPECT_EQ(m.at("orion_serve_completed_total"),
              static_cast<double>(s.completed));
    EXPECT_EQ(m.at("orion_serve_failed_total"),
              static_cast<double>(s.failed));
    EXPECT_EQ(m.at("orion_serve_rejected_total"),
              static_cast<double>(s.rejected));
    EXPECT_EQ(m.at("orion_serve_failed_decode_error_total"),
              static_cast<double>(s.failed_decode));
    EXPECT_EQ(m.at("orion_serve_failed_bad_session_total"),
              static_cast<double>(s.failed_bad_session));
    EXPECT_EQ(m.at("orion_serve_failed_exec_error_total"),
              static_cast<double>(s.failed_exec));
    // Ledger identity holds inside the exposition itself.
    EXPECT_EQ(m.at("orion_serve_completed_total") +
                  m.at("orion_serve_failed_total") +
                  m.at("orion_serve_rejected_total"),
              m.at("orion_serve_submitted_total"));
    // Scrape-time gauges and the latency histograms.
    EXPECT_EQ(m.at("orion_serve_sessions"), 1.0);
    EXPECT_EQ(m.at("orion_serve_queue_depth"), 0.0);
    EXPECT_EQ(m.at("orion_serve_execute_seconds_count"),
              static_cast<double>(s.completed));
    EXPECT_NEAR(m.at("orion_serve_execute_seconds_sum"), s.total_execute_s,
                1e-6 + 0.01 * s.total_execute_s);
    EXPECT_EQ(m.at("orion_serve_queue_wait_seconds_count"),
              static_cast<double>(s.completed));
    // Image accounting: every completed request here carried one sample,
    // so the image counter and the batch-size histogram both track the
    // completion count (sum == images when batching kicks in).
    EXPECT_EQ(s.images, s.completed);
    EXPECT_EQ(m.at("orion_serve_images_total"),
              static_cast<double>(s.images));
    EXPECT_EQ(m.at("orion_serve_batch_size_count"),
              static_cast<double>(s.completed));
    EXPECT_EQ(m.at("orion_serve_batch_size_sum"),
              static_cast<double>(s.images));
    // The process-wide section rides along: op counters from the live
    // Context (this binary has executed many programs by now).
    EXPECT_GT(m.at("orion_ckks_op_keyswitch_total"), 0.0);
    EXPECT_GT(m.at("orion_arena_acquires_total"), 0.0);
}

TEST(Serve, ReplyCarriesPerLayerTimings)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, env.ctx, /*seed=*/502);
    client.set_session_id(server.register_session(client.key_bundle()));

    const std::vector<double> x = random_vector(64, 1.0, 97);
    const serve::ServeReply reply =
        server.submit(client.make_request(x)).get();
    ASSERT_FALSE(reply.stats.layer_times.empty());
    double sum = 0.0;
    bool saw_model_layer = false;
    for (const core::LayerTiming& lt : reply.stats.layer_times) {
        EXPECT_GE(lt.seconds, 0.0);
        if (lt.layer_id >= 0) saw_model_layer = true;
        sum += lt.seconds;
    }
    EXPECT_TRUE(saw_model_layer);
    // The per-instruction charges partition execute_s up to loop overhead.
    EXPECT_LE(sum, reply.stats.execute_s * 1.05 + 1e-3);
    EXPECT_GE(sum, reply.stats.execute_s * 0.5);
}

TEST(ServeBootstrap, BootStageSpansAccountForServedExecuteTime)
{
    // The acceptance criterion: with tracing on, a served bootstrap
    // request's stage spans (ModRaise + CtS + EvalMod + StC) sum to
    // within 10% of the whole-bootstrap span, and the bootstrap span
    // dominates the request's execute_s (the program is one micro MLP
    // around one bootstrap).
    BootServeEnv& senv = BootServeEnv::shared();
    InferenceServer server(senv.cn, senv.ctx, opts(1, 4), senv.prepared);
    ServeClient client(senv.cn, senv.ctx, /*seed=*/503);
    client.set_session_id(server.register_session(client.key_bundle()));

    telemetry::set_tracing(true);
    telemetry::clear_trace();
    const std::vector<double> x = random_vector(64, 1.0, 98);
    const serve::ServeReply reply =
        server.submit(client.make_request(x)).get();
    telemetry::set_tracing(false);

    double stage_sum = 0.0, whole_boot = 0.0, exec_span = 0.0;
    for (const telemetry::TraceRecord& r :
         telemetry::collect_trace_events()) {
        const std::string name = r.event.name;
        const double dur_s = static_cast<double>(r.event.dur_ns) / 1e9;
        if (name == "boot.mod_raise" || name == "boot.cts" ||
            name == "boot.eval_mod" || name == "boot.stc") {
            stage_sum += dur_s;
        } else if (name == "boot.bootstrap") {
            whole_boot += dur_s;
        } else if (name == "serve.execute") {
            exec_span += dur_s;
            EXPECT_EQ(r.event.arg,
                      static_cast<i64>(reply.stats.request_id));
        }
    }
    telemetry::clear_trace();

    ASSERT_GT(whole_boot, 0.0) << "no bootstrap span was traced";
    // The four stages tile the bootstrap span (within 10%).
    EXPECT_GE(stage_sum, 0.9 * whole_boot);
    EXPECT_LE(stage_sum, 1.01 * whole_boot);
    // And the traced serve.execute span brackets the reported wall time.
    EXPECT_GE(exec_span, reply.stats.execute_s * 0.9);
    // Bootstrap dominates this program, so the stage spans also land
    // within 10% of the served execute time (the ISSUE's acceptance bar).
    EXPECT_GE(stage_sum, 0.9 * reply.stats.execute_s);
}

// ---------------------------------------------------------------------
// Slot-batched inference
// ---------------------------------------------------------------------

/** The micro MLP compiled with 16 batch lanes (built once; read-only). */
struct BatchServeEnv {
    Network net;
    CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    BatchServeEnv()
        : net(nn::make_micro_mlp())
    {
        CkksEnv& env = CkksEnv::shared();
        core::CompileOptions opt;
        opt.slots = env.ctx.slot_count();
        opt.l_eff = 4;
        opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
        opt.calibration_samples = 3;
        opt.batch = 16;
        cn = core::compile(net, opt);
        prepared =
            std::make_shared<const core::PreparedProgram>(cn, env.ctx);
    }

    static BatchServeEnv&
    shared()
    {
        static BatchServeEnv env;
        return env;
    }
};

TEST(ServeBatch, CompilerInfersCapacityAndPlanIsUnchanged)
{
    ServeEnv& senv = ServeEnv::shared();
    BatchServeEnv& benv = BatchServeEnv::shared();
    // The micro MLP spans 64 slots per sample, so 1024 toy slots carry
    // exactly 16 lanes at stride 64.
    EXPECT_EQ(benv.cn.batch, 16);
    EXPECT_EQ(benv.cn.batch_capacity, 16);
    EXPECT_EQ(benv.cn.batch_stride, 64u);
    EXPECT_FALSE(benv.cn.batch_limit_layer.empty());
    // Block-diagonal batching: the rotation/pmult schedule is the
    // single-sample schedule — only the diagonal values changed.
    EXPECT_EQ(benv.cn.total_rotations, senv.cn.total_rotations);
    EXPECT_EQ(benv.cn.input_layout.batch, 16);
    EXPECT_EQ(benv.cn.output_layout.batch, 16);
}

TEST(ServeBatch, BatchedRequestMatchesPerSampleExecution)
{
    ServeEnv& senv = ServeEnv::shared();
    BatchServeEnv& benv = BatchServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();

    // Ground truth: each sample through the single-sample program.
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    InferenceServer server(benv.cn, env.ctx, opts(1, 4), benv.prepared);
    ServeClient client(benv.cn, env.ctx, /*seed=*/600);
    client.set_session_id(server.register_session(client.key_bundle()));

    // Deliberately under-filled: 5 of 16 lanes carry samples.
    const int count = 5;
    std::vector<std::vector<double>> inputs;
    for (int i = 0; i < count; ++i) {
        inputs.push_back(random_vector(64, 1.0, 700 + static_cast<u64>(i)));
    }
    const serve::ServeReply reply =
        server.submit(client.make_request_batch(inputs)).get();
    const std::vector<std::vector<double>> got =
        client.decrypt_response_batch(reply.response, count);

    ASSERT_EQ(got.size(), static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const std::vector<double> want =
            direct.run(inputs[static_cast<std::size_t>(i)]).output;
        ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), want.size());
        EXPECT_LT(max_abs_diff(got[static_cast<std::size_t>(i)], want),
                  1e-3)
            << "lane " << i;
    }

    // One program execution served all lanes; the ledger counts images.
    EXPECT_EQ(reply.stats.batch_count, static_cast<u64>(count));
    EXPECT_EQ(reply.stats.rotations, senv.cn.total_rotations);
    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.images, static_cast<u64>(count));
}

TEST(ServeBatch, OverCapacityBatchRejectedNamingTheLimit)
{
    BatchServeEnv& benv = BatchServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(benv.cn, env.ctx, opts(1, 4), benv.prepared);
    ServeClient client(benv.cn, env.ctx, /*seed=*/601);
    client.set_session_id(server.register_session(client.key_bundle()));

    // The client refuses to pack more lanes than the program carries.
    std::vector<std::vector<double>> too_many(
        17, random_vector(64, 1.0, 710));
    expect_throw_contains<Error>(
        [&] { (void)client.make_request_batch(too_many); },
        "batch_count 17 > program capacity 16");

    // A hostile client can still claim any batch_count on the wire; the
    // server rejects it as an exec error naming the limiting layer.
    serve::Request forged = serve::decode_request(
        client.make_request(random_vector(64, 1.0, 711)), env.ctx);
    forged.batch_count = 32;
    auto fut = server.submit(serve::encode_request(forged));
    try {
        (void)fut.get();
        FAIL() << "over-capacity batch was not rejected";
    } catch (const serve::RequestError& e) {
        EXPECT_EQ(e.kind(), serve::ErrorKind::kExecError);
        const std::string msg = e.what();
        EXPECT_NE(msg.find("batch_count 32 > program capacity 16 for "
                           "layer"),
                  std::string::npos)
            << "message: " << msg;
    }
    const serve::ServerStats s = server.stats();
    EXPECT_EQ(s.failed_exec, 1u);
    EXPECT_EQ(s.images, 0u);
}

TEST(ServeBatch, LegacyV3RequestDecodesAsSingleSample)
{
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    ServeClient client(senv.cn, env.ctx, /*seed=*/602);
    client.set_session_id(77);

    // Re-encode a current request in the v3 layout (no batch_count) —
    // what a pre-batching client sends.
    const serve::Request req = serve::decode_request(
        client.make_request(random_vector(64, 1.0, 720)), env.ctx);
    ckks::serial::ByteWriter w;
    w.put_u64(req.session_id);
    w.put_u64(req.request_id);
    w.put_u64(req.inputs.size());
    for (const ckks::Ciphertext& ct : req.inputs) {
        ckks::serial::write_ciphertext(w, ct);
    }
    const ckks::serial::Bytes v3 = ckks::serial::finish_record(
        ckks::serial::RecordKind::kRequest, std::move(w), /*version=*/3);

    const serve::Request decoded = serve::decode_request(v3, env.ctx);
    EXPECT_EQ(decoded.batch_count, 1u);
    EXPECT_EQ(decoded.session_id, req.session_id);
    EXPECT_EQ(decoded.request_id, req.request_id);
    EXPECT_EQ(decoded.inputs.size(), req.inputs.size());

    // peek/rewrite still index the session id on both versions: the
    // batch_count landed AFTER the leading u64.
    ckks::serial::Bytes v4 = serve::encode_request(req);
    EXPECT_EQ(serve::peek_request_session(v3), req.session_id);
    EXPECT_EQ(serve::peek_request_session(v4), req.session_id);
    serve::rewrite_request_session(v4, 4242);
    EXPECT_EQ(serve::peek_request_session(v4), 4242u);
    EXPECT_EQ(serve::decode_request(v4, env.ctx).batch_count,
              req.batch_count);
}

TEST(ServeBatch, SingleSampleProgramBitIdenticalAcrossBatchKnob)
{
    // The compatibility contract: batch = 1 (the default) must execute
    // the EXACT pre-batching program — byte-identical output ciphertexts
    // from identical inputs and keys, at every thread count.
    ServeEnv& senv = ServeEnv::shared();
    CkksEnv& env = CkksEnv::shared();

    core::CompileOptions opt;
    opt.slots = env.ctx.slot_count();
    opt.l_eff = 4;
    opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
    opt.calibration_samples = 3;
    opt.batch = 1;  // explicit, vs ServeEnv's implicit default
    const CompiledNetwork cn1 = core::compile(senv.net, opt);
    EXPECT_EQ(cn1.batch, 1);
    EXPECT_EQ(cn1.batch_stride, 0u);
    EXPECT_TRUE(cn1.input_layout == senv.cn.input_layout);

    // Same seed -> same deterministic keys in both executors.
    core::CkksExecutor legacy(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);
    core::CkksExecutor batched(cn1, env.ctx, /*seed=*/7);
    const std::vector<double> x = random_vector(64, 1.0, 730);
    const std::vector<ckks::Ciphertext> in_cts = legacy.encrypt_input(x);

    const auto output_bytes = [&](core::CkksExecutor& exec) {
        const core::EncryptedResult r = exec.run_encrypted(in_cts);
        ckks::serial::Bytes all;
        for (const ckks::Ciphertext& ct : r.outputs) {
            const ckks::serial::Bytes b = ckks::serial::serialize(ct);
            all.insert(all.end(), b.begin(), b.end());
        }
        return all;
    };

    const ckks::serial::Bytes want = output_bytes(legacy);
    ASSERT_FALSE(want.empty());
    for (const int threads : {1, 2, 4}) {
        core::ScopedNumThreads scoped(threads);
        EXPECT_EQ(output_bytes(legacy), want)
            << "legacy path diverged at " << threads << " threads";
        EXPECT_EQ(output_bytes(batched), want)
            << "batch=1 path diverged at " << threads << " threads";
    }
}

}  // namespace
}  // namespace orion::test
