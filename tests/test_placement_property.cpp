#include <gtest/gtest.h>

#include <random>

#include "src/core/placement.h"

namespace orion::core {
namespace {

/**
 * Property tests for the placement DP: on randomly generated small chains
 * the solver must (a) match an exhaustive brute-force optimum, (b) never
 * lose to the lazy baseline, and (c) produce internally consistent
 * decisions. This is the strongest evidence that the level-digraph
 * shortest path (Section 5.2) is solved exactly.
 */

struct RandomChainParams {
    u64 seed;
    int units;
    int l_eff;
};

PlacementUnit
make_random_unit(std::mt19937_64& rng, int l_eff, int id)
{
    std::uniform_int_distribution<int> depth_dist(0, std::min(3, l_eff));
    std::uniform_real_distribution<double> base_dist(0.1, 5.0);
    std::uniform_real_distribution<double> slope_dist(0.0, 1.0);
    PlacementUnit u;
    u.layer_id = id;
    u.name = "u" + std::to_string(id);
    u.depth = depth_dist(rng);
    const double base = base_dist(rng);
    const double slope = slope_dist(rng);
    u.latency = [base, slope](int lvl) { return base + slope * lvl; };
    return u;
}

/**
 * Brute force: enumerate, for every unit, every (bootstrap?, exec level)
 * choice, and take the cheapest feasible schedule. Exponential - only for
 * tiny chains.
 */
double
brute_force(const std::vector<PlacementUnit>& units,
            const PlacementConfig& cfg)
{
    double best = std::numeric_limits<double>::infinity();
    const int n = static_cast<int>(units.size());
    // Encode choices as: for each unit, boot in {0,1} and exec level in
    // [depth, l_eff]. Recursive search with pruning-free simplicity.
    struct Rec {
        const std::vector<PlacementUnit>& units;
        const PlacementConfig& cfg;
        double& best;
        int n;
        void
        go(int i, int level, double cost)
        {
            if (cost >= best) return;
            if (i == n) {
                best = cost;
                return;
            }
            const PlacementUnit& u = units[static_cast<std::size_t>(i)];
            for (int boot = 0; boot <= 1; ++boot) {
                const int avail = boot ? cfg.l_eff : level;
                const double c =
                    cost + (boot ? cfg.bootstrap_latency *
                                       static_cast<double>(u.input_cts)
                                 : 0.0);
                for (int e = u.depth; e <= avail; ++e) {
                    go(i + 1, e - u.depth, c + u.latency(e));
                }
            }
        }
    };
    Rec rec{units, cfg, best, n};
    rec.go(0, cfg.entry_level(), 0.0);
    return best;
}

class PlacementPropertyTest
    : public ::testing::TestWithParam<RandomChainParams> {};

TEST_P(PlacementPropertyTest, DpMatchesBruteForceOptimum)
{
    const RandomChainParams& p = GetParam();
    std::mt19937_64 rng(p.seed);
    std::vector<PlacementUnit> units;
    for (int i = 0; i < p.units; ++i) {
        units.push_back(make_random_unit(rng, p.l_eff, i));
    }
    Chain chain;
    for (const PlacementUnit& u : units) {
        ChainItem item;
        item.kind = ChainItem::Kind::kUnit;
        item.unit = u;
        chain.items.push_back(std::move(item));
    }
    PlacementConfig cfg;
    cfg.l_eff = p.l_eff;
    cfg.bootstrap_latency = 7.5;

    const PlacementResult dp = place_bootstraps(chain, cfg);
    const double brute = brute_force(units, cfg);
    EXPECT_NEAR(dp.latency, brute, 1e-9 + 1e-9 * brute)
        << "seed " << p.seed;

    // Lazy never beats the DP.
    const PlacementResult lazy = place_bootstraps_lazy(chain, cfg);
    EXPECT_LE(dp.latency, lazy.latency + 1e-9) << "seed " << p.seed;

    // Decisions replay consistently.
    int level = cfg.entry_level();
    double replayed = 0.0;
    std::size_t i = 0;
    for (const UnitDecision& d : dp.decisions) {
        const PlacementUnit& u = units[i++];
        if (d.bootstrap_before) {
            replayed += cfg.bootstrap_latency *
                        static_cast<double>(u.input_cts);
            level = cfg.l_eff;
        }
        ASSERT_LE(d.exec_level, level);
        ASSERT_GE(d.exec_level, u.depth);
        replayed += u.latency(d.exec_level);
        level = d.exec_level - u.depth;
    }
    EXPECT_NEAR(replayed, dp.latency, 1e-9 + 1e-9 * dp.latency);
}

INSTANTIATE_TEST_SUITE_P(
    RandomChains, PlacementPropertyTest,
    ::testing::Values(RandomChainParams{1, 4, 3}, RandomChainParams{2, 5, 4},
                      RandomChainParams{3, 6, 3}, RandomChainParams{4, 6, 5},
                      RandomChainParams{5, 7, 4}, RandomChainParams{6, 5, 2},
                      RandomChainParams{7, 8, 3},
                      RandomChainParams{8, 6, 6}));

TEST(PlacementProperty, RegionMatchesFlattenedEquivalentWhenShortcutFree)
{
    // A region whose second branch is empty and whose join is free is
    // *almost* a plain chain - but the join forces both branches to meet,
    // so the region cost must be >= the unconstrained chain cost.
    std::mt19937_64 rng(99);
    std::vector<PlacementUnit> units;
    for (int i = 0; i < 4; ++i) units.push_back(make_random_unit(rng, 4, i));

    Chain flat;
    for (const PlacementUnit& u : units) {
        ChainItem item;
        item.kind = ChainItem::Kind::kUnit;
        item.unit = u;
        flat.items.push_back(std::move(item));
    }
    Chain region_chain;
    {
        ChainItem region;
        region.kind = ChainItem::Kind::kRegion;
        region.unit.layer_id = 100;
        region.unit.depth = 0;
        region.unit.latency = [](int) { return 0.0; };
        Chain backbone = flat;  // same units inside the region
        region.branches.push_back(std::move(backbone));
        region.branches.emplace_back();
        region_chain.items.push_back(std::move(region));
    }
    PlacementConfig cfg;
    cfg.l_eff = 4;
    cfg.bootstrap_latency = 3.0;
    const PlacementResult plain = place_bootstraps(flat, cfg);
    const PlacementResult region = place_bootstraps(region_chain, cfg);
    EXPECT_GE(region.latency + 1e-9, plain.latency);
}

}  // namespace
}  // namespace orion::core
