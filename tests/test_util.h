#ifndef ORION_TESTS_TEST_UTIL_H_
#define ORION_TESTS_TEST_UTIL_H_

/**
 * @file
 * Shared fixtures for the test suite: a lazily-constructed toy CKKS
 * environment (context + keys + evaluator) reused across test files so key
 * generation cost is paid once, plus random-vector helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "src/ckks/ckks.h"

namespace orion::test {

/** Rotation steps for which the shared environment owns Galois keys. */
inline const std::vector<int> kSharedSteps = {1,  2,  3,  4,   5,  7, 8,
                                              16, 31, 64, 100, -1, -3, -8};

/** A complete toy CKKS environment shared by tests (NOT secure params). */
struct CkksEnv {
    ckks::CkksParams params;
    ckks::Context ctx;
    ckks::Encoder encoder;
    ckks::KeyGenerator keygen;
    ckks::PublicKey pk;
    ckks::KswitchKey relin;
    ckks::GaloisKeys galois;
    ckks::Encryptor encryptor;
    ckks::Decryptor decryptor;
    ckks::Evaluator eval;
    /** The toy chain (6 levels) is too short for the real circuit, so
     *  the shared environment carries the explicit oracle fixture. */
    ckks::OracleBootstrapper boot;

    CkksEnv()
        : params(ckks::CkksParams::toy()), ctx(params), encoder(ctx),
          keygen(ctx, /*seed=*/7), pk(keygen.make_public_key()),
          relin(keygen.make_relin_key()),
          galois(keygen.make_galois_keys(kSharedSteps,
                                         /*include_conjugation=*/true)),
          encryptor(ctx, pk), decryptor(ctx, keygen.secret_key()),
          eval(ctx, encoder), boot(ctx, encoder, keygen.secret_key())
    {
        eval.set_relin_key(&relin);
        eval.set_galois_keys(&galois);
    }

    static CkksEnv&
    shared()
    {
        static CkksEnv env;
        return env;
    }
};

/** Asserts fn() throws an E whose message contains `needle`. */
template <typename E, typename Fn>
inline void
expect_throw_contains(Fn&& fn, const std::string& needle)
{
    bool threw = false;
    try {
        fn();
    } catch (const E& e) {
        threw = true;
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message: " << e.what() << "\nexpected substring: " << needle;
    }
    EXPECT_TRUE(threw) << "expected an exception containing '" << needle
                       << "'";
}

/** Uniform random doubles in [-range, range]. */
inline std::vector<double>
random_vector(std::size_t n, double range = 1.0, u64 seed = 42)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-range, range);
    std::vector<double> out(n);
    for (double& x : out) x = dist(rng);
    return out;
}

inline double
max_abs_diff(const std::vector<double>& a, const std::vector<double>& b)
{
    double m = 0.0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        m = std::max(m, std::abs(a[i] - b[i]));
    }
    return m;
}

/** Encrypts a real vector at the given level with the canonical scale. */
inline ckks::Ciphertext
encrypt_vector(CkksEnv& env, const std::vector<double>& values, int level)
{
    const ckks::Plaintext pt =
        env.encoder.encode(values, level, env.ctx.scale());
    return env.encryptor.encrypt(pt);
}

/** Decrypts to the real parts of all slots. */
inline std::vector<double>
decrypt_vector(CkksEnv& env, const ckks::Ciphertext& ct)
{
    return env.encoder.decode(env.decryptor.decrypt(ct));
}

}  // namespace orion::test

#endif  // ORION_TESTS_TEST_UTIL_H_
