#include <gtest/gtest.h>

#include "src/baselines/lee_packing.h"
#include "src/baselines/unhoisted.h"
#include "src/core/compiler.h"
#include "src/nn/models.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

TEST(LeeBaseline, StridedConvCostsTwoLevels)
{
    lin::Conv2dSpec spec;
    spec.in_channels = 4;
    spec.out_channels = 8;
    spec.kernel_h = spec.kernel_w = 3;
    spec.stride = 2;
    spec.pad = 1;
    const lin::TensorLayout in(4, 16, 16, 1);
    const auto counts = baselines::lee_conv_counts(spec, in, 1u << 14);
    EXPECT_EQ(counts.depth, 2);  // conv + mask-and-collect

    spec.stride = 1;
    const auto counts1 = baselines::lee_conv_counts(spec, in, 1u << 14);
    EXPECT_EQ(counts1.depth, 1);
}

TEST(LeeBaseline, OrionNeedsFewerRotations)
{
    // The Table 3 property on a mid-size CIFAR-style conv stack.
    const nn::Network net =
        nn::make_resnet_cifar(8, nn::Act::kRelu);  // smallest 6n+2
    const u64 slots = 1u << 14;
    const auto lee = baselines::lee_network_counts(net, slots);

    core::CompileOptions opt;
    opt.slots = slots;
    opt.l_eff = 10;
    opt.structural_only = true;
    opt.calibration_samples = 1;
    const core::CompiledNetwork cn = core::compile(net, opt);

    EXPECT_GT(lee.rotations, cn.total_rotations)
        << "single-shot multiplexing must reduce rotations";
    const double improvement = static_cast<double>(lee.rotations) /
                               static_cast<double>(cn.total_rotations);
    // Paper Table 3 reports 1.64x - 6.41x across networks.
    EXPECT_GT(improvement, 1.2);
    EXPECT_LT(improvement, 20.0);
}

TEST(LeeBaseline, StridedDepthPenaltyShowsInNetworkTotals)
{
    // ResNet-8 has strided convs; Lee's linear-layer depth must exceed
    // Orion's (which is exactly one level per linear layer).
    const nn::Network net = nn::make_resnet_cifar(8, nn::Act::kRelu);
    const auto lee = baselines::lee_network_counts(net, 1u << 14);
    int orion_linear_layers = 0;
    for (int id = 0; id < net.num_layers(); ++id) {
        const nn::LayerKind k = net.layer(id).kind;
        if (k == nn::LayerKind::kConv2d || k == nn::LayerKind::kLinear ||
            k == nn::LayerKind::kAvgPool2d) {
            ++orion_linear_layers;
        }
    }
    EXPECT_GT(lee.mult_depth_linear, orion_linear_layers);
}

TEST(UnhoistedBaseline, MatchesHoistedResult)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 dim = env.ctx.slot_count();
    lin::DiagonalMatrix m(dim);
    std::mt19937_64 rng(55);
    std::uniform_real_distribution<double> dist(-0.4, 0.4);
    for (u64 k = 0; k < 12; ++k) {
        for (u64 r = 0; r < dim; ++r) m.set(r, (r + 5 * k) % dim, dist(rng));
    }
    const lin::BsgsPlan plan = lin::BsgsPlan::build(m);
    ckks::GaloisKeys keys = env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);

    const int level = 3;
    const double scale = static_cast<double>(env.ctx.q(level).value());
    const std::vector<double> x = random_vector(dim, 1.0, 56);
    const ckks::Ciphertext ct = encrypt_vector(env, x, level);

    const lin::HeDiagonalMatrix hoisted(env.ctx, env.encoder, m, plan, level,
                                        scale);
    const ckks::Ciphertext ya = hoisted.apply(eval, ct);
    const ckks::Ciphertext yb = baselines::apply_unhoisted(
        eval, env.encoder, m, plan, level, scale, ct);
    EXPECT_LT(max_abs_diff(decrypt_vector(env, ya), decrypt_vector(env, yb)),
              1e-3);
}

TEST(UnhoistedBaseline, CountsFullRotations)
{
    CkksEnv& env = CkksEnv::shared();
    const u64 dim = env.ctx.slot_count();
    lin::DiagonalMatrix m(dim);
    for (u64 k : {1ull, 2ull, 33ull}) {
        for (u64 r = 0; r < dim; ++r) m.set(r, (r + k) % dim, 0.01);
    }
    const lin::BsgsPlan plan = lin::BsgsPlan::build(m, 32);
    ckks::GaloisKeys keys = env.keygen.make_galois_keys(plan.required_steps());
    ckks::Evaluator eval(env.ctx, env.encoder);
    eval.set_galois_keys(&keys);
    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(dim, 1.0, 57), 2);

    env.ctx.counters().reset();
    (void)baselines::apply_unhoisted(eval, env.encoder, m, plan, 2,
                                     env.ctx.scale(), ct);
    // All rotations are full (un-hoisted): hrot, not hrot_hoisted.
    EXPECT_EQ(env.ctx.counters().hrot, plan.rotation_count());
    EXPECT_EQ(env.ctx.counters().hrot_hoisted, 0u);

    env.ctx.counters().reset();
    const lin::HeDiagonalMatrix hoisted(env.ctx, env.encoder, m, plan, 2,
                                        env.ctx.scale());
    (void)hoisted.apply(eval, ct);
    EXPECT_EQ(env.ctx.counters().hrot, 0u);
    EXPECT_EQ(env.ctx.counters().hrot_hoisted, plan.rotation_count());
}

TEST(UnhoistedBaseline, HoistedIsFasterAtScale)
{
    // The cost model's account of Table 4: hoisted rotations are cheaper
    // than full rotations at every level.
    const core::CostModel cost = core::CostModel::paper_scale();
    for (int lvl : {2, 5, 10, 15}) {
        EXPECT_LT(cost.rotation_hoisted(lvl), cost.rotation(lvl)) << lvl;
    }
}

}  // namespace
}  // namespace orion::test
