#include <gtest/gtest.h>

#include <cmath>

#include "src/approx/approx.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using approx::ChebyshevPoly;
using approx::CompositeSign;
using approx::HePolyEvaluator;

double
silu(double x)
{
    return x / (1.0 + std::exp(-x));
}

TEST(Chebyshev, FitReproducesPolynomials)
{
    // Interpolation at degree+1 nodes is exact for polynomials.
    auto f = [](double x) { return 3.0 * x * x * x - 0.25 * x + 0.125; };
    const ChebyshevPoly p = ChebyshevPoly::fit(f, -1.0, 1.0, 3);
    for (double x = -1.0; x <= 1.0; x += 0.05) {
        EXPECT_NEAR(p.eval(x), f(x), 1e-12);
    }
}

TEST(Chebyshev, ClenshawMatchesDirectBasis)
{
    const ChebyshevPoly p({0.5, -1.0, 0.25, 0.125}, -1.0, 1.0);
    for (double x = -1.0; x <= 1.0; x += 0.1) {
        const double t0 = 1.0;
        const double t1 = x;
        const double t2 = 2 * x * x - 1;
        const double t3 = 4 * x * x * x - 3 * x;
        EXPECT_NEAR(p.eval(x), 0.5 * t0 - t1 + 0.25 * t2 + 0.125 * t3, 1e-12);
    }
}

TEST(Chebyshev, NonCanonicalDomain)
{
    auto f = [](double x) { return std::exp(0.3 * x); };
    const ChebyshevPoly p = ChebyshevPoly::fit(f, -4.0, 4.0, 15);
    EXPECT_LT(p.max_error(f), 1e-8);
}

TEST(Chebyshev, ErrorDecreasesWithDegree)
{
    // On a wide domain the SiLU fit converges slowly enough to observe.
    auto f = [](double x) { return silu(5.0 * x); };
    double prev = 1e9;
    for (int d : {7, 15, 31, 63}) {
        const ChebyshevPoly p = ChebyshevPoly::fit(f, -1.0, 1.0, d);
        const double err = p.max_error(f);
        EXPECT_LT(err, prev);
        prev = err;
    }
    EXPECT_LT(prev, 1e-6);
}

TEST(Remez, MatchesKnownMinimaxForAbs)
{
    // The degree-2 minimax error for |x| on [-1,1] is 1/8 (classic result).
    const approx::RemezResult r =
        approx::remez_fit([](double x) { return std::abs(x); }, -1, 1, 2);
    EXPECT_NEAR(r.minimax_error, 0.125, 5e-3);
}

TEST(Remez, BeatsInterpolationForSilu)
{
    const int degree = 15;
    const ChebyshevPoly interp =
        ChebyshevPoly::fit(silu, -3.0, 3.0, degree);
    const approx::RemezResult r = approx::remez_fit(silu, -3.0, 3.0, degree);
    EXPECT_LE(r.minimax_error, interp.max_error(silu) * 1.001);
}

TEST(Sign, StagePolyIsOddAndSquashing)
{
    const ChebyshevPoly f7 = approx::sign_stage_poly(7);
    EXPECT_EQ(f7.degree(), 15);
    for (double x = 0.05; x <= 1.0; x += 0.05) {
        EXPECT_NEAR(f7.eval(x), -f7.eval(-x), 1e-9);        // odd
        EXPECT_GT(f7.eval(x), x - 1e-12);                    // moves toward 1
        EXPECT_LE(std::abs(f7.eval(x)), 1.0 + 1e-9);         // stays bounded
    }
}

TEST(Sign, CompositeApproachesSign)
{
    // The paper's composite degrees [15, 15, 27]. Our rescale-eager
    // evaluator consumes 5 + 5 + 5 levels (the paper's lazy-rescale
    // accounting reports 4 + 4 + 5 = 13; see EXPERIMENTS.md).
    const CompositeSign sign({15, 15, 27});
    EXPECT_EQ(sign.depth(), 15);
    for (double x : {0.05, 0.1, 0.3, 0.7, 1.0}) {
        EXPECT_NEAR(sign.eval(x), 1.0, 1e-2) << x;
        EXPECT_NEAR(sign.eval(-x), -1.0, 1e-2) << x;
    }
}

TEST(Sign, ReluStagesComputeRelu)
{
    const auto stages = approx::make_relu_stages({15, 15, 27});
    for (double x = -1.0; x <= 1.0; x += 0.04) {
        if (std::abs(x) < 0.04) continue;  // sign transition region
        const double want = x > 0 ? x : 0.0;
        EXPECT_NEAR(approx::composite_relu_reference(stages, x), want, 2e-2)
            << x;
    }
}

TEST(PolyDepth, BoundedByCeilLog2PlusOne)
{
    // Our exactly-scaled evaluator consumes at most ceil(log2(d+1)) + 1
    // levels (the +1 is the price of eager rescaling; the paper's
    // accounting assumes the fused variant). Build polynomials with
    // slowly-decaying coefficients so no pruning shrinks the degree.
    int prev = 0;
    for (int d : {3, 7, 15, 27, 31, 63, 127}) {
        std::vector<double> coeffs(static_cast<std::size_t>(d) + 1);
        for (int k = 0; k <= d; ++k) {
            coeffs[static_cast<std::size_t>(k)] = 1.0 / (k + 1.0);
        }
        const ChebyshevPoly p(coeffs);
        const int depth = HePolyEvaluator::poly_depth(p);
        const int ceil_log = static_cast<int>(std::ceil(std::log2(d + 1.0)));
        EXPECT_GE(depth, ceil_log) << "degree " << d;
        EXPECT_LE(depth, ceil_log + 1) << "degree " << d;
        EXPECT_GE(depth, prev) << "monotone in degree, degree " << d;
        prev = depth;
    }
    // ReLU [15,15,27]: 5 + 5 + 5 + 1 (paper's lazy-rescale count: 14).
    const auto relu = approx::make_relu_stages({15, 15, 27});
    EXPECT_EQ(HePolyEvaluator::relu_depth(relu), 16);
}

class HePolyEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(HePolyEvalTest, EvaluatesChebyshevOnCiphertext)
{
    const int degree = GetParam();
    CkksEnv& env = CkksEnv::shared();
    auto f = [](double x) { return std::sin(2.0 * x) * 0.5; };
    const ChebyshevPoly p = ChebyshevPoly::fit(f, -1.0, 1.0, degree);
    const HePolyEvaluator he(env.eval);
    const int depth = HePolyEvaluator::poly_depth(p);
    ASSERT_LE(depth, env.ctx.max_level());

    const std::vector<double> x =
        random_vector(env.ctx.slot_count(), 1.0, 200 + degree);
    const ckks::Ciphertext ct = encrypt_vector(env, x, env.ctx.max_level());
    const ckks::Ciphertext out = he.evaluate(p, ct);

    EXPECT_EQ(out.level(), env.ctx.max_level() - depth);
    EXPECT_DOUBLE_EQ(out.scale, env.ctx.scale());  // errorless
    const std::vector<double> got = decrypt_vector(env, out);
    double err = 0;
    for (u64 i = 0; i < x.size(); ++i) {
        err = std::max(err, std::abs(got[i] - p.eval(x[i])));
    }
    EXPECT_LT(err, 1e-2) << "degree " << degree;
}

INSTANTIATE_TEST_SUITE_P(Degrees, HePolyEvalTest,
                         ::testing::Values(3, 7, 15, 27, 31));

TEST(HePolyEval, NonCanonicalDomainConsumesOneExtraLevel)
{
    CkksEnv& env = CkksEnv::shared();
    auto f = [](double x) { return 0.25 * x * x - 0.1; };
    const ChebyshevPoly p = ChebyshevPoly::fit(f, -2.0, 2.0, 7);
    const ChebyshevPoly p_canonical = ChebyshevPoly::fit(
        [&f](double u) { return f(2.0 * u); }, -1.0, 1.0, 7);
    const HePolyEvaluator he(env.eval);
    const int depth = HePolyEvaluator::poly_depth(p);
    EXPECT_EQ(depth, HePolyEvaluator::poly_depth(p_canonical) + 1);

    const std::vector<double> x =
        random_vector(env.ctx.slot_count(), 2.0, 300);
    const ckks::Ciphertext ct = encrypt_vector(env, x, env.ctx.max_level());
    const ckks::Ciphertext out = he.evaluate(p, ct);
    EXPECT_EQ(out.level(), env.ctx.max_level() - depth);
    const std::vector<double> got = decrypt_vector(env, out);
    double err = 0;
    for (u64 i = 0; i < x.size(); ++i) {
        err = std::max(err, std::abs(got[i] - f(x[i])));
    }
    EXPECT_LT(err, 1e-2);
}

TEST(HePolyEval, CustomTargetScale)
{
    CkksEnv& env = CkksEnv::shared();
    const ChebyshevPoly p = ChebyshevPoly::fit(
        [](double x) { return x * x; }, -1.0, 1.0, 2);
    const HePolyEvaluator he(env.eval);
    const double target = static_cast<double>(env.ctx.q(2).value());
    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(env.ctx.slot_count(), 1.0, 301), 4);
    const ckks::Ciphertext out = he.evaluate(p, ct, target);
    EXPECT_DOUBLE_EQ(out.scale, target);
}

TEST(HePolyEval, SquareActivationViaComposite)
{
    CkksEnv& env = CkksEnv::shared();
    const HePolyEvaluator he(env.eval);
    const std::vector<double> x =
        random_vector(env.ctx.slot_count(), 1.0, 302);
    const ckks::Ciphertext ct = encrypt_vector(env, x, 3);
    const ChebyshevPoly sq = ChebyshevPoly::fit(
        [](double v) { return v * v; }, -1.0, 1.0, 2);
    const ckks::Ciphertext out = he.evaluate(sq, ct);
    const std::vector<double> got = decrypt_vector(env, out);
    double err = 0;
    for (u64 i = 0; i < x.size(); ++i) {
        err = std::max(err, std::abs(got[i] - x[i] * x[i]));
    }
    EXPECT_LT(err, 1e-2);
}

TEST(HePolyEval, CompositeReluUnderEncryption)
{
    // The flagship activation: composite minimax ReLU, depth 14 total.
    CkksEnv& env = CkksEnv::shared();
    // Toy params have few levels; use a small composite [3, 3]:
    // depth = 2 + 2 + 1 = 5, within the toy budget when starting at L.
    const auto stages = approx::make_relu_stages({3, 3});
    const HePolyEvaluator he(env.eval);
    const int depth = HePolyEvaluator::relu_depth(stages);
    EXPECT_EQ(depth, 5);
    ASSERT_GE(env.ctx.max_level(), depth);

    std::vector<double> x = random_vector(env.ctx.slot_count(), 1.0, 303);
    const ckks::Ciphertext ct = encrypt_vector(env, x, env.ctx.max_level());
    const ckks::Ciphertext out = he.evaluate_times_input(stages, ct);
    EXPECT_EQ(out.level(), env.ctx.max_level() - depth);
    EXPECT_DOUBLE_EQ(out.scale, env.ctx.scale());

    const std::vector<double> got = decrypt_vector(env, out);
    double err = 0;
    for (u64 i = 0; i < x.size(); ++i) {
        const double expect =
            approx::composite_relu_reference(stages, x[i]);
        err = std::max(err, std::abs(got[i] - expect));
    }
    EXPECT_LT(err, 5e-2);
}

TEST(HePolyEval, RejectsInsufficientLevels)
{
    CkksEnv& env = CkksEnv::shared();
    const ChebyshevPoly p = ChebyshevPoly::fit(
        [](double x) { return x * x * x; }, -1.0, 1.0, 3);
    const HePolyEvaluator he(env.eval);
    const ckks::Ciphertext ct =
        encrypt_vector(env, random_vector(env.ctx.slot_count(), 1.0, 304), 1);
    EXPECT_THROW(he.evaluate(p, ct), Error);
}

}  // namespace
}  // namespace orion::test
