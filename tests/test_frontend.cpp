/**
 * @file
 * Frontend/IR equivalence: for every model-zoo network, the module-built
 * graph must reproduce the pre-frontend hand-threaded builders bit for
 * bit at the same (golden) seed - identical layers, identical weights,
 * identical forward() outputs, identical param/flop counts. The legacy
 * builders are pinned verbatim below as the reference, with their own
 * copy of the initializer so drift in either side fails the suite.
 *
 * Also covers the module API itself: shape inference at construction,
 * state_dict get/set, initialization rules, and lowering errors.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "src/nn/models.h"
#include "src/nn/module.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using nn::Act;
using nn::Network;

// =====================================================================
// legacy:: - verbatim copy of the pre-frontend model builders (PR 3
// state of src/nn/models.cpp), the golden reference for this suite.
// =====================================================================

namespace legacy {

class Init {
  public:
    explicit Init(u64 seed) : rng_(seed) {}

    std::vector<double>
    conv(const lin::Conv2dSpec& s)
    {
        const u64 fan_in = static_cast<u64>(s.in_channels) / s.groups *
                           s.kernel_h * s.kernel_w;
        return gaussian(s.weight_count(),
                        std::sqrt(2.0 / static_cast<double>(fan_in)));
    }
    std::vector<double>
    linear(int out_features, int in_features)
    {
        return gaussian(static_cast<u64>(out_features) * in_features,
                        std::sqrt(2.0 / static_cast<double>(in_features)));
    }
    std::vector<double>
    bias(int n)
    {
        return gaussian(static_cast<u64>(n), 0.01);
    }
    void
    bn(int c, std::vector<double>* gamma, std::vector<double>* beta,
       std::vector<double>* mean, std::vector<double>* var)
    {
        std::uniform_real_distribution<double> g(0.6, 1.4);
        std::uniform_real_distribution<double> v(0.4, 1.6);
        gamma->resize(static_cast<std::size_t>(c));
        beta->resize(static_cast<std::size_t>(c));
        mean->resize(static_cast<std::size_t>(c));
        var->resize(static_cast<std::size_t>(c));
        for (int i = 0; i < c; ++i) {
            (*gamma)[static_cast<std::size_t>(i)] = g(rng_);
            (*beta)[static_cast<std::size_t>(i)] = 0.05 * normal_(rng_);
            (*mean)[static_cast<std::size_t>(i)] = 0.1 * normal_(rng_);
            (*var)[static_cast<std::size_t>(i)] = v(rng_);
        }
    }

  private:
    std::vector<double>
    gaussian(u64 n, double std)
    {
        std::vector<double> out(n);
        for (double& x : out) x = std * normal_(rng_);
        return out;
    }
    std::mt19937_64 rng_;
    std::normal_distribution<double> normal_{0.0, 1.0};
};

nn::ActivationSpec
act_spec(Act act)
{
    switch (act) {
    case Act::kSquare: return nn::ActivationSpec::square();
    case Act::kRelu: return nn::ActivationSpec::relu({15, 15, 27});
    case Act::kSilu: return nn::ActivationSpec::silu(127);
    }
    ORION_ASSERT(false);
    return {};
}


// The historical builders passed the weight and bias draws as function
// arguments; gcc evaluates function arguments right to left, so the
// seeded model zoo has always drawn bias before weights. These helpers
// pin that order explicitly, making the golden reference
// compiler-independent (the module frontend reproduces the same order).
int
linear_drawn(Network& net, Init& init, int input, int out, int in)
{
    std::vector<double> b = init.bias(out);
    std::vector<double> w = init.linear(out, in);
    return net.add_linear(input, out, std::move(w), std::move(b));
}

int
conv_drawn(Network& net, Init& init, int input, const lin::Conv2dSpec& spec)
{
    std::vector<double> b = init.bias(spec.out_channels);
    std::vector<double> w = init.conv(spec);
    return net.add_conv2d(input, spec, std::move(w), std::move(b));
}

int
conv_bn_act(Network& net, Init& init, int input, int co, int kernel,
            int stride, int pad, Act act, int groups = 1)
{
    const nn::Shape& in = net.shape_of(input);
    lin::Conv2dSpec spec;
    spec.in_channels = in.c;
    spec.out_channels = co;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;
    int id = net.add_conv2d(input, spec, init.conv(spec));
    std::vector<double> g, b, m, v;
    init.bn(co, &g, &b, &m, &v);
    id = net.add_batchnorm2d(id, g, b, m, v);
    return net.add_activation(id, legacy::act_spec(act));
}

int
conv_bn(Network& net, Init& init, int input, int co, int kernel, int stride,
        int pad, int groups = 1)
{
    const nn::Shape& in = net.shape_of(input);
    lin::Conv2dSpec spec;
    spec.in_channels = in.c;
    spec.out_channels = co;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;
    int id = net.add_conv2d(input, spec, init.conv(spec));
    std::vector<double> g, b, m, v;
    init.bn(co, &g, &b, &m, &v);
    return net.add_batchnorm2d(id, g, b, m, v);
}

int
basic_block(Network& net, Init& init, int input, int co, int stride, Act act)
{
    const int ci = net.shape_of(input).c;
    int out = conv_bn_act(net, init, input, co, 3, stride, 1, act);
    out = conv_bn(net, init, out, co, 3, 1, 1);
    int shortcut = input;
    if (stride != 1 || ci != co) {
        shortcut = conv_bn(net, init, input, co, 1, stride, 0);
    }
    const int sum = net.add_add(out, shortcut);
    return net.add_activation(sum, legacy::act_spec(act));
}

int
bottleneck_block(Network& net, Init& init, int input, int planes, int stride,
                 Act act)
{
    const int ci = net.shape_of(input).c;
    const int co = planes * 4;
    int out = conv_bn_act(net, init, input, planes, 1, 1, 0, act);
    out = conv_bn_act(net, init, out, planes, 3, stride, 1, act);
    out = conv_bn(net, init, out, co, 1, 1, 0);
    int shortcut = input;
    if (stride != 1 || ci != co) {
        shortcut = conv_bn(net, init, input, co, 1, stride, 0);
    }
    const int sum = net.add_add(out, shortcut);
    return net.add_activation(sum, legacy::act_spec(act));
}

int
resnet_trunk(Network& net, Init& init, int input, bool bottleneck,
             const std::vector<int>& blocks, Act act)
{
    int id = conv_bn_act(net, init, input, 64, 7, 2, 3, act);
    id = net.add_avgpool2d(id, 3, 2, 1);
    const std::vector<int> widths = {64, 128, 256, 512};
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            id = bottleneck
                     ? bottleneck_block(net, init, id, widths[stage], stride,
                                        act)
                     : basic_block(net, init, id, widths[stage], stride,
                                   act);
        }
    }
    return id;
}

Network
make_micro_mlp(u64 seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> dist(0.0, 0.3);
    auto weights = [&rng, &dist](u64 n) {
        std::vector<double> w(n);
        for (double& x : w) x = dist(rng);
        return w;
    };
    Network net("micro-mlp");
    int id = net.add_input(1, 8, 8);
    id = net.add_flatten(id);
    std::vector<double> b1 = weights(16);  // bias first: see linear_drawn
    std::vector<double> w1 = weights(16 * 64);
    id = net.add_linear(id, 16, std::move(w1), std::move(b1));
    id = net.add_activation(id, nn::ActivationSpec::square());
    std::vector<double> b2 = weights(5);
    std::vector<double> w2 = weights(5 * 16);
    id = net.add_linear(id, 5, std::move(w2), std::move(b2));
    net.set_output(id);
    return net;
}

Network
make_mlp(u64 seed)
{
    Init init(seed);
    Network net("mlp");
    int id = net.add_input(1, 28, 28);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 128, 784);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = linear_drawn(net, init, id, 128, 128);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = linear_drawn(net, init, id, 10, 128);
    net.set_output(id);
    return net;
}

Network
make_lola(u64 seed)
{
    Init init(seed);
    Network net("lola");
    int id = net.add_input(1, 28, 28);
    lin::Conv2dSpec spec;
    spec.in_channels = 1;
    spec.out_channels = 5;
    spec.kernel_h = spec.kernel_w = 5;
    spec.stride = 2;
    spec.pad = 1;
    id = conv_drawn(net, init, id, spec);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = net.add_flatten(id);  // 5 x 13 x 13 = 845
    id = linear_drawn(net, init, id, 100, 845);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = linear_drawn(net, init, id, 10, 100);
    net.set_output(id);
    return net;
}

Network
make_lenet5(u64 seed)
{
    Init init(seed);
    Network net("lenet5");
    int id = net.add_input(1, 28, 28);
    lin::Conv2dSpec c1;
    c1.in_channels = 1;
    c1.out_channels = 32;
    c1.kernel_h = c1.kernel_w = 5;
    c1.pad = 2;
    id = conv_drawn(net, init, id, c1);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = net.add_avgpool2d(id, 2, 2);
    lin::Conv2dSpec c2;
    c2.in_channels = 32;
    c2.out_channels = 64;
    c2.kernel_h = c2.kernel_w = 5;
    c2.pad = 2;
    id = conv_drawn(net, init, id, c2);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = net.add_avgpool2d(id, 2, 2);
    id = net.add_flatten(id);  // 64 * 7 * 7 = 3136
    id = linear_drawn(net, init, id, 512, 3136);
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = linear_drawn(net, init, id, 10, 512);
    net.set_output(id);
    return net;
}

Network
make_alexnet_cifar(Act act, u64 seed)
{
    Init init(seed);
    Network net(act == Act::kSilu ? "alexnet-silu" : "alexnet-relu");
    int id = net.add_input(3, 32, 32);
    id = conv_bn_act(net, init, id, 64, 3, 2, 1, act);
    id = conv_bn_act(net, init, id, 192, 3, 1, 1, act);
    id = net.add_avgpool2d(id, 2, 2);
    id = conv_bn_act(net, init, id, 384, 3, 1, 1, act);
    id = conv_bn_act(net, init, id, 256, 3, 1, 1, act);
    id = conv_bn_act(net, init, id, 256, 3, 1, 1, act);
    id = net.add_avgpool2d(id, 2, 2);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 4096, 4096);
    id = net.add_activation(id, legacy::act_spec(act));
    id = linear_drawn(net, init, id, 1024, 4096);
    id = net.add_activation(id, legacy::act_spec(act));
    id = linear_drawn(net, init, id, 10, 1024);
    net.set_output(id);
    return net;
}

Network
make_vgg16_cifar(Act act, u64 seed)
{
    Init init(seed);
    Network net(act == Act::kSilu ? "vgg16-silu" : "vgg16-relu");
    int id = net.add_input(3, 32, 32);
    const std::vector<std::vector<int>> stages = {
        {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512},
        {512, 512, 512}};
    for (const std::vector<int>& stage : stages) {
        for (int width : stage) {
            id = conv_bn_act(net, init, id, width, 3, 1, 1, act);
        }
        id = net.add_avgpool2d(id, 2, 2);
    }
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 512, 512);
    id = net.add_activation(id, legacy::act_spec(act));
    id = linear_drawn(net, init, id, 10, 512);
    net.set_output(id);
    return net;
}

Network
make_resnet_cifar(int depth, Act act, u64 seed)
{
    const int n = (depth - 2) / 6;
    Init init(seed);
    Network net("resnet" + std::to_string(depth) +
                (act == Act::kSilu ? "-silu" : "-relu"));
    int id = net.add_input(3, 32, 32);
    id = conv_bn_act(net, init, id, 16, 3, 1, 1, act);
    const std::vector<int> widths = {16, 32, 64};
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < n; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            id = basic_block(net, init, id, widths[stage], stride, act);
        }
    }
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 10, 64);
    net.set_output(id);
    return net;
}

Network
make_mobilenet_v1(u64 seed)
{
    Init init(seed);
    Network net("mobilenet");
    const Act act = Act::kSilu;
    int id = net.add_input(3, 64, 64);
    id = conv_bn_act(net, init, id, 32, 3, 2, 1, act);
    const std::vector<std::pair<int, int>> blocks = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2},
        {512, 1}, {512, 1}, {512, 1}, {512, 1},  {512, 1},  {1024, 2},
        {1024, 1}};
    for (const auto& [co, stride] : blocks) {
        const int ci = net.shape_of(id).c;
        id = conv_bn_act(net, init, id, ci, 3, stride, 1, act,
                         /*groups=*/ci);
        id = conv_bn_act(net, init, id, co, 1, 1, 0, act);
    }
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 200, 1024);
    net.set_output(id);
    return net;
}

Network
make_resnet18_tiny(u64 seed)
{
    Init init(seed);
    Network net("resnet18");
    const Act act = Act::kSilu;
    int id = net.add_input(3, 64, 64);
    id = conv_bn_act(net, init, id, 64, 3, 1, 1, act);
    const std::vector<int> widths = {64, 128, 256, 512};
    const std::vector<int> blocks = {2, 2, 2, 2};
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            id = basic_block(net, init, id, widths[stage], stride, act);
        }
    }
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 200, 512);
    net.set_output(id);
    return net;
}

Network
make_resnet34_imagenet(u64 seed)
{
    Init init(seed);
    Network net("resnet34");
    int id = net.add_input(3, 224, 224);
    id = resnet_trunk(net, init, id, /*bottleneck=*/false, {3, 4, 6, 3},
                      Act::kSilu);
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 1000, 512);
    net.set_output(id);
    return net;
}

Network
make_resnet50_imagenet(u64 seed)
{
    Init init(seed);
    Network net("resnet50");
    int id = net.add_input(3, 224, 224);
    id = resnet_trunk(net, init, id, /*bottleneck=*/true, {3, 4, 6, 3},
                      Act::kSilu);
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 1000, 2048);
    net.set_output(id);
    return net;
}

Network
make_yolo_v1(u64 seed)
{
    Init init(seed);
    Network net("yolo-v1");
    const Act act = Act::kSilu;
    int id = net.add_input(3, 448, 448);
    id = resnet_trunk(net, init, id, /*bottleneck=*/false, {3, 4, 6, 3},
                      act);
    id = conv_bn_act(net, init, id, 512, 3, 2, 1, act);
    id = net.add_flatten(id);
    id = linear_drawn(net, init, id, 4096, 25088);
    id = net.add_activation(id, legacy::act_spec(act));
    id = linear_drawn(net, init, id, 1470, 4096);
    net.set_output(id);
    return net;
}

}  // namespace legacy

// =====================================================================
// Comparison machinery
// =====================================================================

u64
fnv(u64 h, u64 x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

u64
fnv_doubles(u64 h, const std::vector<double>& v)
{
    u64 bits = 0;
    h = fnv(h, v.size());
    for (double x : v) {
        static_assert(sizeof(double) == sizeof(u64));
        std::memcpy(&bits, &x, sizeof(bits));
        h = fnv(h, bits);
    }
    return h;
}

/** Structural + parameter fingerprint of a graph (order-sensitive). */
u64
fingerprint(const Network& net)
{
    u64 h = 0xcbf29ce484222325ull;
    h = fnv(h, static_cast<u64>(net.num_layers()));
    h = fnv(h, static_cast<u64>(net.input_id()));
    h = fnv(h, static_cast<u64>(net.output_id()));
    for (int id = 0; id < net.num_layers(); ++id) {
        const nn::Layer& l = net.layer(id);
        h = fnv(h, static_cast<u64>(l.kind));
        for (int in : l.inputs) h = fnv(h, static_cast<u64>(in));
        h = fnv(h, static_cast<u64>(l.conv.in_channels));
        h = fnv(h, static_cast<u64>(l.conv.out_channels));
        h = fnv(h, static_cast<u64>(l.conv.kernel_h));
        h = fnv(h, static_cast<u64>(l.conv.kernel_w));
        h = fnv(h, static_cast<u64>(l.conv.stride));
        h = fnv(h, static_cast<u64>(l.conv.pad));
        h = fnv(h, static_cast<u64>(l.conv.dilation));
        h = fnv(h, static_cast<u64>(l.conv.groups));
        h = fnv(h, static_cast<u64>(l.in_features));
        h = fnv(h, static_cast<u64>(l.out_features));
        h = fnv(h, static_cast<u64>(l.pool_kernel));
        h = fnv(h, static_cast<u64>(l.pool_stride));
        h = fnv(h, static_cast<u64>(l.pool_pad));
        h = fnv(h, static_cast<u64>(l.act.kind));
        for (int d : l.act.relu_degrees) h = fnv(h, static_cast<u64>(d));
        h = fnv(h, static_cast<u64>(l.act.degree));
        h = fnv(h, static_cast<u64>(l.out_shape.size()));
        h = fnv_doubles(h, l.weights);
        h = fnv_doubles(h, l.bias);
        h = fnv_doubles(h, l.bn_gamma);
        h = fnv_doubles(h, l.bn_beta);
        h = fnv_doubles(h, l.bn_mean);
        h = fnv_doubles(h, l.bn_var);
    }
    return h;
}

struct Golden {
    std::string name;
    u64 params = 0;
    u64 flops = 0;
    int layers = 0;
    u64 fp = 0;

    bool
    operator==(const Golden& o) const
    {
        return name == o.name && params == o.params && flops == o.flops &&
               layers == o.layers && fp == o.fp;
    }
};

std::ostream&
operator<<(std::ostream& os, const Golden& g)
{
    return os << g.name << "{params=" << g.params << ", flops=" << g.flops
              << ", layers=" << g.layers << ", fp=" << g.fp << "}";
}

/** Builds via `make`, summarizes, and frees the network immediately. */
template <typename MakeFn>
Golden
summarize(MakeFn make)
{
    const Network net = make();
    return Golden{net.network_name(), net.param_count(), net.flop_count(),
                  net.num_layers(), fingerprint(net)};
}

/** Layer-by-layer identity (better failure localization than the hash). */
void
expect_identical(const Network& want, const Network& got)
{
    ASSERT_EQ(want.num_layers(), got.num_layers());
    EXPECT_EQ(want.network_name(), got.network_name());
    EXPECT_EQ(want.input_id(), got.input_id());
    EXPECT_EQ(want.output_id(), got.output_id());
    for (int id = 0; id < want.num_layers(); ++id) {
        const nn::Layer& a = want.layer(id);
        const nn::Layer& b = got.layer(id);
        ASSERT_EQ(a.kind, b.kind) << "layer " << id;
        EXPECT_EQ(a.inputs, b.inputs) << "layer " << id;
        EXPECT_TRUE(a.out_shape == b.out_shape)
            << "layer " << id << ": " << to_string(a.out_shape) << " vs "
            << to_string(b.out_shape);
        EXPECT_TRUE(a.weights == b.weights)
            << "layer " << id << " weights differ";
        EXPECT_TRUE(a.bias == b.bias) << "layer " << id << " bias differs";
        EXPECT_TRUE(a.bn_gamma == b.bn_gamma) << "layer " << id;
        EXPECT_TRUE(a.bn_beta == b.bn_beta) << "layer " << id;
        EXPECT_TRUE(a.bn_mean == b.bn_mean) << "layer " << id;
        EXPECT_TRUE(a.bn_var == b.bn_var) << "layer " << id;
        EXPECT_EQ(a.act.kind, b.act.kind) << "layer " << id;
        EXPECT_EQ(a.act.relu_degrees, b.act.relu_degrees) << "layer " << id;
        EXPECT_EQ(a.act.degree, b.act.degree) << "layer " << id;
    }
    EXPECT_EQ(want.param_count(), got.param_count());
    EXPECT_EQ(want.flop_count(), got.flop_count());
}

// =====================================================================
// Equivalence tests (golden seeds = the zoo's defaults)
// =====================================================================

TEST(FrontendEquivalence, MicroAndMnistNetsAreIdentical)
{
    expect_identical(legacy::make_micro_mlp(51), nn::make_micro_mlp());
    expect_identical(legacy::make_mlp(1), nn::make_mlp());
    expect_identical(legacy::make_lola(2), nn::make_lola());
    expect_identical(legacy::make_lenet5(3), nn::make_lenet5());
}

TEST(FrontendEquivalence, CifarNetsAreIdentical)
{
    expect_identical(legacy::make_alexnet_cifar(Act::kRelu, 4),
                     nn::make_alexnet_cifar(Act::kRelu));
    expect_identical(legacy::make_vgg16_cifar(Act::kSilu, 5),
                     nn::make_vgg16_cifar(Act::kSilu));
    expect_identical(legacy::make_resnet_cifar(20, Act::kRelu, 6),
                     nn::make_resnet_cifar(20, Act::kRelu));
    expect_identical(legacy::make_resnet_cifar(20, Act::kSilu, 6),
                     nn::make_resnet_cifar(20, Act::kSilu));
    expect_identical(legacy::make_resnet_cifar(56, Act::kRelu, 6),
                     nn::make_resnet_cifar(56, Act::kRelu));
}

TEST(FrontendEquivalence, TinyImagenetNetsAreIdentical)
{
    expect_identical(legacy::make_mobilenet_v1(7), nn::make_mobilenet_v1());
    expect_identical(legacy::make_resnet18_tiny(8),
                     nn::make_resnet18_tiny());
}

TEST(FrontendEquivalence, LargeNetFingerprintsMatch)
{
    // ImageNet/VOC scale: summarize (params, flops, layer count, FNV over
    // every weight bit) and free each network before building the next,
    // bounding peak memory at ~one network.
    EXPECT_EQ(summarize([] { return legacy::make_resnet_cifar(
                                 110, Act::kRelu, 6); }),
              summarize([] {
                  return nn::make_resnet_cifar(110, Act::kRelu);
              }));
    EXPECT_EQ(summarize([] { return legacy::make_resnet34_imagenet(9); }),
              summarize([] { return nn::make_resnet34_imagenet(); }));
    EXPECT_EQ(summarize([] { return legacy::make_resnet50_imagenet(10); }),
              summarize([] { return nn::make_resnet50_imagenet(); }));
    EXPECT_EQ(summarize([] { return legacy::make_yolo_v1(11); }),
              summarize([] { return nn::make_yolo_v1(); }));
}

TEST(FrontendEquivalence, ForwardOutputsAreBitIdentical)
{
    struct Case {
        const char* name;
        Network want, got;
    };
    std::vector<Case> cases;
    cases.push_back({"micro", legacy::make_micro_mlp(51),
                     nn::make_micro_mlp()});
    cases.push_back({"mlp", legacy::make_mlp(1), nn::make_mlp()});
    cases.push_back({"lenet5", legacy::make_lenet5(3), nn::make_lenet5()});
    cases.push_back({"resnet20-relu",
                     legacy::make_resnet_cifar(20, Act::kRelu, 6),
                     nn::make_resnet_cifar(20, Act::kRelu)});
    cases.push_back({"resnet20-silu",
                     legacy::make_resnet_cifar(20, Act::kSilu, 6),
                     nn::make_resnet_cifar(20, Act::kSilu)});
    for (const Case& c : cases) {
        const u64 in_size = c.want.shape_of(c.want.input_id()).size();
        const std::vector<double> x = random_vector(in_size, 1.0, 77);
        const std::vector<double> a = c.want.forward(x);
        const std::vector<double> b = c.got.forward(x);
        ASSERT_EQ(a.size(), b.size()) << c.name;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i], b[i]) << c.name << " logit " << i;
        }
    }
}

// =====================================================================
// Module API
// =====================================================================

TEST(Module, ShapeInferenceCatchesMismatchesAtConstruction)
{
    auto bad_channels = nn::Sequential(
        {nn::Conv2d(3, 8, 3, {.pad = 1}), nn::Conv2d(3, 8, 3, {.pad = 1})});
    expect_throw_contains<Error>(
        [&] { bad_channels->infer_shape(nn::Shape{false, 3, 8, 8, 0}); },
        "Conv2d expects 3 input channels");

    auto bad_features = nn::Sequential({nn::Flatten(), nn::Linear(100, 10)});
    expect_throw_contains<Error>(
        [&] { bad_features->infer_shape(nn::Shape{false, 1, 8, 8, 0}); },
        "Linear expects 100 input features");

    auto bad_residual = nn::Residual(nn::Conv2d(1, 4, 3, {.stride = 2}));
    expect_throw_contains<Error>(
        [&] { bad_residual->infer_shape(nn::Shape{false, 1, 8, 8, 0}); },
        "different shapes");

    auto ok = nn::Sequential({nn::Conv2d(1, 4, 3, {.stride = 2, .pad = 1}),
                              nn::Flatten(), nn::Linear(64, 10)});
    const nn::Shape out = ok->infer_shape(nn::Shape{false, 1, 8, 8, 0});
    EXPECT_TRUE(out.flat);
    EXPECT_EQ(out.features, 10);
}

TEST(Module, StateDictRoundTripsAndRebuildsTheSameGraph)
{
    auto make_tree = [] {
        return nn::Sequential(
            {std::pair<std::string, nn::ModulePtr>{"conv",
                                                   nn::Conv2d(1, 2, 3)},
             {"act", nn::Square()},
             {"flat", nn::Flatten()},
             {"fc", nn::Linear(2 * 6 * 6, 4)}});
    };
    auto a = make_tree();
    EXPECT_FALSE(a->initialized());
    a->initialize(123);
    EXPECT_TRUE(a->initialized());

    const nn::StateDict dict = a->state_dict();
    EXPECT_EQ(dict.size(), 4u);  // conv w/b + fc w/b
    EXPECT_TRUE(dict.count("conv.weight") == 1);
    EXPECT_TRUE(dict.count("conv.bias") == 1);
    EXPECT_TRUE(dict.count("fc.weight") == 1);
    EXPECT_TRUE(dict.count("fc.bias") == 1);

    auto b = make_tree();
    b->load_state_dict(dict);
    EXPECT_TRUE(b->initialized());

    Network na = nn::lower_to_network(*a, 1, 8, 8, "a");
    Network nb = nn::lower_to_network(*b, 1, 8, 8, "b");
    const std::vector<double> x = random_vector(64, 1.0, 9);
    EXPECT_TRUE(na.forward(x) == nb.forward(x));

    expect_throw_contains<Error>(
        [&] { b->load_state_dict({{"conv.nope", {1.0}}}); },
        "unknown parameter");
    expect_throw_contains<Error>(
        [&] { b->load_state_dict({{"missing.weight", {1.0}}}); },
        "unknown parameter");
    expect_throw_contains<Error>(
        [&] { b->set_param("0", {}); }, "no parameter");
}

TEST(Module, UserSetParametersSurviveInitialization)
{
    auto fc = nn::Linear(4, 2);
    const std::vector<double> w = {1, 2, 3, 4, 5, 6, 7, 8};
    fc->set_param("weight", w);
    expect_throw_contains<Error>(
        [&] { fc->set_param("weight", {1.0}); }, "expects 8 values");
    fc->initialize(u64(7));  // draws only the bias
    EXPECT_TRUE(fc->param("weight") == w);
    EXPECT_EQ(fc->param("bias").size(), 2u);
    EXPECT_EQ(fc->param_count(), 10u);
}

TEST(Module, LoweringRequiresInitializedParameters)
{
    auto m = nn::Sequential({nn::Flatten(), nn::Linear(64, 10)});
    expect_throw_contains<Error>(
        [&] { nn::lower_to_network(*m, 1, 8, 8, "x"); },
        "uninitialized parameters");
}

TEST(Module, TakeParamsMovesWeightsIntoTheNetwork)
{
    auto m = nn::Linear(4, 2);
    m->initialize(u64(3));
    Network keep = nn::lower_to_network(*m, 1, 2, 2, "keep",
                                        /*take_params=*/false);
    EXPECT_TRUE(m->initialized());
    Network take = nn::lower_to_network(*m, 1, 2, 2, "take",
                                        /*take_params=*/true);
    EXPECT_FALSE(m->initialized());  // weights moved out
    const std::vector<double> x = random_vector(4, 1.0, 4);
    EXPECT_TRUE(keep.forward(x) == take.forward(x));
}

TEST(Module, ParamCountMatchesLoweredNetwork)
{
    auto block = nn::BasicBlock(16, 32, 2, Act::kRelu);
    block->initialize(u64(5));
    Network net = nn::lower_to_network(*block, 16, 8, 8, "block");
    EXPECT_EQ(block->param_count(), net.param_count());
}

}  // namespace
}  // namespace orion::test
