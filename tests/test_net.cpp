#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/core/executor.h"
#include "src/net/net.h"
#include "src/nn/models.h"
#include "tests/test_util.h"

namespace orion::test {
namespace {

using core::CompiledNetwork;
using nn::Network;
using serve::InferenceServer;
using serve::ServeClient;
using serve::ServeOptions;

/** Shared compiled program (built once; read-only) — mirrors test_serve. */
struct NetEnv {
    Network net;
    CompiledNetwork cn;
    std::shared_ptr<const core::PreparedProgram> prepared;

    NetEnv()
        : net(nn::make_micro_mlp())
    {
        CkksEnv& env = CkksEnv::shared();
        core::CompileOptions opt;
        opt.slots = env.ctx.slot_count();
        opt.l_eff = 4;
        opt.cost = core::CostModel::for_params(env.ctx.degree(), 3, 3, 3);
        opt.calibration_samples = 3;
        opt.structural_only = false;
        cn = core::compile(net, opt);
        prepared =
            std::make_shared<const core::PreparedProgram>(cn, env.ctx);
    }

    static NetEnv&
    shared()
    {
        static NetEnv env;
        return env;
    }
};

ServeOptions
opts(int inflight, int capacity, bool paused = false)
{
    ServeOptions o;
    o.max_inflight = inflight;
    o.queue_capacity = capacity;
    o.start_paused = paused;
    return o;
}

net::ClientOptions
fast_client()
{
    net::ClientOptions o;
    o.connect_timeout_s = 2.0;
    o.io_timeout_s = 30.0;
    o.max_attempts = 40;
    o.backoff_base_s = 0.01;
    o.backoff_cap_s = 0.1;
    return o;
}

std::size_t
argmax(const std::vector<double>& v)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
        if (v[i] > v[best]) best = i;
    }
    return best;
}

u64
global_counter(const std::string& name)
{
    const auto snap = telemetry::Registry::global().snapshot();
    auto it = snap.find(name);
    return it == snap.end() ? 0 : static_cast<u64>(it->second);
}

/** Waits until the peer closes `conn` (read yields EOF/reset). */
bool
wait_for_peer_close(net::Conn& conn, double timeout_s)
{
    u8 byte = 0;
    try {
        conn.read_exact(&byte, 1, timeout_s);
    } catch (const net::DisconnectError&) {
        return true;
    } catch (const net::TimeoutError&) {
        return false;
    }
    return false;  // unexpected payload byte
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(NetFrame, HeaderRoundTrip)
{
    const std::vector<u8> payload = {1, 2, 3, 4, 5};
    const ckks::serial::Bytes wire =
        net::encode_frame(net::MsgType::kRequest, 42, payload);
    ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + payload.size());

    const net::FrameHeader h = net::decode_frame_header(
        std::span<const u8>(wire.data(), net::kFrameHeaderBytes),
        net::kDefaultMaxFrameBytes);
    EXPECT_EQ(h.type, net::MsgType::kRequest);
    EXPECT_EQ(h.corr, 42u);
    EXPECT_EQ(h.payload_len, payload.size());
}

TEST(NetFrame, HeaderValidationRejectsHostileInput)
{
    const ckks::serial::Bytes good =
        net::encode_frame(net::MsgType::kPing, 1, {});

    ckks::serial::Bytes bad_magic = good;
    bad_magic[0] = 'X';
    expect_throw_contains<Error>(
        [&] {
            net::decode_frame_header(
                std::span<const u8>(bad_magic.data(),
                                    net::kFrameHeaderBytes),
                net::kDefaultMaxFrameBytes);
        },
        "magic");

    ckks::serial::Bytes bad_version = good;
    bad_version[4] = 99;
    expect_throw_contains<Error>(
        [&] {
            net::decode_frame_header(
                std::span<const u8>(bad_version.data(),
                                    net::kFrameHeaderBytes),
                net::kDefaultMaxFrameBytes);
        },
        "version");

    ckks::serial::Bytes bad_type = good;
    bad_type[5] = 200;
    expect_throw_contains<Error>(
        [&] {
            net::decode_frame_header(
                std::span<const u8>(bad_type.data(),
                                    net::kFrameHeaderBytes),
                net::kDefaultMaxFrameBytes);
        },
        "type");

    // Oversized: a declared payload above the receiver's cap.
    const ckks::serial::Bytes big =
        net::encode_frame(net::MsgType::kRequest, 1,
                          std::vector<u8>(128, 0));
    expect_throw_contains<Error>(
        [&] {
            net::decode_frame_header(
                std::span<const u8>(big.data(), net::kFrameHeaderBytes),
                /*max_payload_bytes=*/64);
        },
        "exceeds");
}

TEST(NetFrame, ErrorTaxonomy)
{
    using net::ErrCode;
    EXPECT_TRUE(net::retryable(ErrCode::kOverloaded));
    EXPECT_TRUE(net::retryable(ErrCode::kShardDown));
    EXPECT_TRUE(net::retryable(ErrCode::kShuttingDown));
    EXPECT_FALSE(net::retryable(ErrCode::kDecodeError));
    EXPECT_FALSE(net::retryable(ErrCode::kExecError));
    EXPECT_TRUE(net::needs_reregister(ErrCode::kUnknownSession));
    EXPECT_FALSE(net::needs_reregister(ErrCode::kOverloaded));

    const ckks::serial::Bytes p =
        net::encode_error(ErrCode::kOverloaded, "queue full");
    const net::WireError we = net::decode_error(p);
    EXPECT_EQ(we.code, ErrCode::kOverloaded);
    EXPECT_EQ(we.message, "queue full");
}

TEST(NetFrame, ControlPayloadRoundTrips)
{
    net::Pong in;
    in.queue_depth = 3;
    in.inflight = 2;
    in.sessions = 7;
    in.completed = 11;
    const net::Pong out = net::decode_pong(net::encode_pong(in));
    EXPECT_EQ(out.queue_depth, 3u);
    EXPECT_EQ(out.inflight, 2u);
    EXPECT_EQ(out.sessions, 7u);
    EXPECT_EQ(out.completed, 11u);

    const std::vector<u8> bundle = {9, 8, 7};
    const ckks::serial::Bytes reg = net::encode_register(0xFEED, bundle);
    EXPECT_EQ(net::decode_register_token(reg), 0xFEEDu);
    const std::span<const u8> view = net::register_bundle(reg);
    ASSERT_EQ(view.size(), bundle.size());
    EXPECT_EQ(std::memcmp(view.data(), bundle.data(), bundle.size()), 0);

    EXPECT_EQ(net::decode_u64(net::encode_u64(123)), 123u);
    EXPECT_EQ(net::decode_text(net::encode_text("hello")), "hello");

    // Hostile control payloads hit ByteReader validation, not UB.
    expect_throw_contains<Error>(
        [&] { net::decode_pong(std::vector<u8>{1, 2}); }, "");
    expect_throw_contains<Error>(
        [&] { net::decode_register_token(std::vector<u8>{1}); }, "");
}

TEST(NetWire, RewriteRequestSessionPatchesInPlace)
{
    NetEnv& senv = NetEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    ServeClient client(senv.cn, env.ctx, /*seed=*/501);
    client.set_session_id(0xAABB);
    ckks::serial::Bytes req =
        client.make_request(random_vector(64, 1.0, 77));
    ASSERT_EQ(serve::peek_request_session(req), 0xAABBu);
    serve::rewrite_request_session(req, 7);
    EXPECT_EQ(serve::peek_request_session(req), 7u);
}

TEST(NetSocket, ParseHostPort)
{
    std::string host;
    int port = 0;
    net::parse_host_port("127.0.0.1:8080", host, port);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
    expect_throw_contains<Error>(
        [&] { net::parse_host_port("nohost", host, port); }, "");
    expect_throw_contains<Error>(
        [&] { net::parse_host_port("h:notaport", host, port); }, "");
}

// ---------------------------------------------------------------------
// FrameServer loop: hostile input, disconnects, slow loris
// ---------------------------------------------------------------------

/** An echo FrameServer for transport-level tests. */
struct EchoServer {
    net::FrameServer fs;

    explicit EchoServer(net::FrameServer::Options o = {})
        : fs(net::Listener(0), o, [this](u64 id, net::Frame&& f) {
              fs.send(id, f.type, f.corr, f.payload);
          })
    {
        fs.start();
    }
};

TEST(NetLoop, EchoRoundTrip)
{
    EchoServer srv;
    net::Conn conn = net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
    const std::vector<u8> payload(1000, 0xAB);
    net::send_frame(conn, net::MsgType::kPing, 5, payload, 2.0);
    const net::Frame f = net::recv_frame(conn, 5.0);
    EXPECT_EQ(f.type, net::MsgType::kPing);
    EXPECT_EQ(f.corr, 5u);
    EXPECT_EQ(f.payload.size(), payload.size());
}

TEST(NetLoop, GarbageFrameClosesConnection)
{
    EchoServer srv;
    const u64 rejected_before = global_counter("net.conn.frame_rejected");
    net::Conn conn = net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
    const char garbage[] = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
    conn.write_all(garbage, sizeof(garbage), 2.0);
    EXPECT_TRUE(wait_for_peer_close(conn, 5.0));
    EXPECT_GT(global_counter("net.conn.frame_rejected"), rejected_before);

    // The loop survives a poisoned conn: a fresh one still works.
    net::Conn again = net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
    net::send_frame(again, net::MsgType::kPing, 1, {}, 2.0);
    EXPECT_EQ(net::recv_frame(again, 5.0).corr, 1u);
}

TEST(NetLoop, OversizedFrameClosesConnection)
{
    net::FrameServer::Options o;
    o.max_frame_bytes = 1024;
    EchoServer srv(o);
    net::Conn conn = net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
    // A well-formed header declaring a payload above the server's cap.
    const ckks::serial::Bytes wire = net::encode_frame(
        net::MsgType::kRequest, 1, std::vector<u8>(4096, 0));
    conn.write_all(wire.data(), net::kFrameHeaderBytes, 2.0);
    EXPECT_TRUE(wait_for_peer_close(conn, 5.0));
}

TEST(NetLoop, TruncatedFrameThenDisconnectIsHarmless)
{
    EchoServer srv;
    const u64 closed_before = global_counter("net.conn.closed");
    {
        net::Conn conn =
            net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
        // Half a header, then a mid-request disconnect.
        const ckks::serial::Bytes wire = net::encode_frame(
            net::MsgType::kRequest, 9, std::vector<u8>(64, 1));
        conn.write_all(wire.data(), net::kFrameHeaderBytes / 2, 2.0);
    }  // ~Conn closes the socket
    const double deadline = net::mono_seconds() + 5.0;
    while (global_counter("net.conn.closed") <= closed_before &&
           net::mono_seconds() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(global_counter("net.conn.closed"), closed_before);

    net::Conn again = net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
    net::send_frame(again, net::MsgType::kPing, 2, {}, 2.0);
    EXPECT_EQ(net::recv_frame(again, 5.0).corr, 2u);
}

TEST(NetLoop, SlowLorisPartialFrameHitsReadTimeout)
{
    net::FrameServer::Options o;
    o.read_timeout_s = 0.3;
    EchoServer srv(o);
    const u64 timeouts_before = global_counter("net.conn.read_timeout");
    net::Conn conn = net::Conn::connect("127.0.0.1", srv.fs.port(), 2.0);
    // Dribble a valid header prefix, then stall forever.
    const ckks::serial::Bytes wire = net::encode_frame(
        net::MsgType::kRequest, 3, std::vector<u8>(64, 1));
    conn.write_all(wire.data(), 6, 2.0);
    EXPECT_TRUE(wait_for_peer_close(conn, 5.0));
    EXPECT_GT(global_counter("net.conn.read_timeout"), timeouts_before);
}

// ---------------------------------------------------------------------
// ServeEndpoint end to end
// ---------------------------------------------------------------------

TEST(NetEndpoint, ServedMatchesDirectExecution)
{
    NetEnv& senv = NetEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    net::ServeEndpoint endpoint(server, net::Listener(0));

    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);
    ServeClient crypto(senv.cn, env.ctx, /*seed=*/601);
    net::NetClient client(crypto, "127.0.0.1", endpoint.port(), 0x601,
                          fast_client());
    EXPECT_EQ(server.session_count(), 1u);

    for (int round = 0; round < 2; ++round) {
        const std::vector<double> x =
            random_vector(64, 1.0, 900 + static_cast<u64>(round));
        const std::vector<double> want = direct.run(x).output;
        const std::vector<double> got = client.infer(x);
        ASSERT_EQ(got.size(), want.size());
        EXPECT_LT(max_abs_diff(got, want), 1e-3);
        EXPECT_EQ(argmax(got), argmax(want));
    }

    // The endpoint's scrape shows both serve.* and net.* series.
    const std::string text = client.fetch_metrics();
    EXPECT_NE(text.find("orion_serve_completed_total"), std::string::npos);
    EXPECT_NE(text.find("orion_net_frames_rx_total"), std::string::npos);

    client.close();
    const double deadline = net::mono_seconds() + 5.0;
    while (server.session_count() != 0 &&
           net::mono_seconds() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.session_count(), 0u);  // close() unregistered
}

TEST(NetEndpoint, OverloadedIsTypedAndRetryable)
{
    NetEnv& senv = NetEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    // Paused workers + a one-slot queue: the first request parks in the
    // queue, every further one is a try_submit rejection.
    InferenceServer server(senv.cn, env.ctx,
                           opts(1, 1, /*paused=*/true), senv.prepared);
    net::ServeEndpoint endpoint(server, net::Listener(0));

    ServeClient crypto(senv.cn, env.ctx, /*seed=*/602);
    net::NetClient client(crypto, "127.0.0.1", endpoint.port(), 0x602,
                          fast_client());

    // Fill the queue through the raw wire (no retry machinery).
    net::Conn raw = net::Conn::connect("127.0.0.1", endpoint.port(), 2.0);
    crypto.set_session_id(0x602);
    const ckks::serial::Bytes filler =
        crypto.make_request(random_vector(64, 1.0, 910));
    net::send_frame(raw, net::MsgType::kRequest, 77, filler, 5.0);

    // Wait until the filler occupies the queue slot.
    const double deadline = net::mono_seconds() + 5.0;
    while (server.stats().submitted < 1 &&
           net::mono_seconds() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(server.stats().submitted, 1u);

    // A second raw request must come back as the typed overloaded error.
    net::send_frame(raw, net::MsgType::kRequest, 78, filler, 5.0);
    const net::Frame err = net::recv_frame(raw, 5.0);
    ASSERT_EQ(err.type, net::MsgType::kError);
    EXPECT_EQ(err.corr, 78u);
    const net::WireError we = net::decode_error(err.payload);
    EXPECT_EQ(we.code, net::ErrCode::kOverloaded);
    EXPECT_TRUE(net::retryable(we.code));

    // The retrying client parks on overloaded until resume() frees the
    // queue, then completes.
    std::thread release([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        server.resume();
    });
    const std::vector<double> x = random_vector(64, 1.0, 911);
    const std::vector<double> out = client.infer(x);
    release.join();
    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);
    const std::vector<double> want = direct.run(x).output;
    ASSERT_EQ(out.size(), want.size());
    EXPECT_LT(max_abs_diff(out, want), 1e-3);
    EXPECT_GT(client.retry_stats().retries, 0u);

    (void)net::recv_frame(raw, 30.0);  // drain the filler's response
    client.close();
}

// ---------------------------------------------------------------------
// Router: sharding + kill-one-shard failover
// ---------------------------------------------------------------------

net::RouterOptions
fast_router()
{
    net::RouterOptions o;
    o.health_interval_s = 0.05;
    o.pong_timeout_s = 0.5;
    o.connect_timeout_s = 1.0;
    o.shard_read_timeout_s = 60.0;
    return o;
}

TEST(NetRouter, ShardsSessionsAndSurvivesShardDeath)
{
    NetEnv& senv = NetEnv::shared();
    CkksEnv& env = CkksEnv::shared();

    InferenceServer server_a(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    InferenceServer server_b(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    auto ep_a = std::make_unique<net::ServeEndpoint>(server_a,
                                                     net::Listener(0));
    auto ep_b = std::make_unique<net::ServeEndpoint>(server_b,
                                                     net::Listener(0));
    std::ostringstream addr_a, addr_b;
    addr_a << "127.0.0.1:" << ep_a->port();
    addr_b << "127.0.0.1:" << ep_b->port();

    net::Router router({addr_a.str(), addr_b.str()}, net::Listener(0),
                       fast_router());
    ASSERT_TRUE(router.wait_for_shards(2, 10.0));

    core::CkksExecutor direct(senv.cn, env.ctx, /*seed=*/7, std::nullopt,
                              senv.prepared);

    // Two clients; with rendezvous hashing their tokens may land on the
    // same shard or different ones — both placements are valid.
    ServeClient crypto_a(senv.cn, env.ctx, /*seed=*/701);
    ServeClient crypto_b(senv.cn, env.ctx, /*seed=*/702);
    net::NetClient client_a(crypto_a, "127.0.0.1", router.port(), 0x701,
                            fast_client());
    net::NetClient client_b(crypto_b, "127.0.0.1", router.port(), 0x702,
                            fast_client());
    EXPECT_EQ(router.session_count(), 2u);
    EXPECT_EQ(server_a.session_count() + server_b.session_count(), 2u);

    auto run_and_check = [&](net::NetClient& c, u64 seed) {
        const std::vector<double> x = random_vector(64, 1.0, seed);
        const std::vector<double> want = direct.run(x).output;
        const std::vector<double> got = c.infer(x);
        ASSERT_EQ(got.size(), want.size());
        EXPECT_LT(max_abs_diff(got, want), 1e-3);
        EXPECT_EQ(argmax(got), argmax(want));
    };
    run_and_check(client_a, 920);
    run_and_check(client_b, 921);

    // Kill whichever shard currently holds at least one session — any
    // session death exercises failover. Every request after this must
    // still produce the right answer (retries allowed, wrong answers
    // not).
    const bool kill_a = server_a.session_count() > 0;
    InferenceServer& survivor_server = kill_a ? server_b : server_a;
    auto& victim_ep = kill_a ? ep_a : ep_b;
    const std::size_t victim_sessions =
        (kill_a ? server_a : server_b).session_count();
    ASSERT_GT(victim_sessions, 0u);
    victim_ep->stop();
    victim_ep.reset();

    const double deadline = net::mono_seconds() + 10.0;
    while (router.alive_shards() != 1 &&
           net::mono_seconds() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(router.alive_shards(), 1u);

    // Both clients keep getting correct answers: sessions on the dead
    // shard re-register on the survivor via unknown_session.
    run_and_check(client_a, 930);
    run_and_check(client_b, 931);
    run_and_check(client_a, 932);
    run_and_check(client_b, 933);

    const auto snap = router.metrics().snapshot();
    EXPECT_EQ(static_cast<u64>(snap.at("router.shard.dead")), 1u);
    EXPECT_EQ(static_cast<u64>(snap.at("router.shard.failover")),
              victim_sessions);
    EXPECT_GE(client_a.retry_stats().reregisters +
                  client_b.retry_stats().reregisters,
              victim_sessions);

    // The survivor now holds both sessions (the dead server object keeps
    // its stale registrations — nothing unregisters them — so only the
    // survivor's count is meaningful).
    EXPECT_EQ(survivor_server.session_count(), 2u);

    client_a.close();
    client_b.close();
    router.stop();
}

TEST(NetRouter, RoutesThroughToMetricsAndPing)
{
    NetEnv& senv = NetEnv::shared();
    CkksEnv& env = CkksEnv::shared();
    InferenceServer server(senv.cn, env.ctx, opts(1, 4), senv.prepared);
    net::ServeEndpoint endpoint(server, net::Listener(0));
    std::ostringstream addr;
    addr << "127.0.0.1:" << endpoint.port();
    net::Router router({addr.str()}, net::Listener(0), fast_router());
    ASSERT_TRUE(router.wait_for_shards(1, 10.0));

    ServeClient crypto(senv.cn, env.ctx, /*seed=*/703);
    net::NetClient client(crypto, "127.0.0.1", router.port(), 0x703,
                          fast_client());
    const net::Pong pong = client.ping();
    EXPECT_EQ(pong.sessions, 1u);

    const std::string text = client.fetch_metrics();
    EXPECT_NE(text.find("orion_router_requests_forwarded_total"),
              std::string::npos);
    EXPECT_NE(text.find("orion_router_shards_alive"), std::string::npos);

    client.close();
    router.stop();
}

}  // namespace
}  // namespace orion::test
