/**
 * @file
 * MNIST MLP behind the serving subsystem: two clients with distinct key
 * bundles register sessions on one InferenceServer and run concurrent
 * encrypted inferences through the full wire path
 *
 *   encrypt -> serialize -> submit -> (scheduler) -> execute ->
 *   serialize -> decrypt
 *
 * and each result is validated against a direct in-process CkksExecutor
 * run of the same compiled program (the paper's Section 6 deployment
 * model: the server computes on ciphertexts it cannot read).
 *
 * With `--connect host:port` the same two-client workload runs over TCP
 * instead: the peer is an orion_served shard or an orion_router front
 * (the wire is identical), requests travel through net::NetClient with
 * its retry/failover machinery, and the acceptance bar is unchanged —
 * served argmax must equal the direct in-process argmax.
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"
#include "src/net/net.h"
#include "src/serve/serve.h"

using namespace orion;

namespace {

std::size_t
argmax(const std::vector<double>& v)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
        if (v[i] > v[best]) best = i;
    }
    return best;
}

/** The --connect mode: both clients' traffic over Orion-Net frames. */
int
run_connected(Session& session, const std::string& host, int port)
{
    serve::ServeClient alice = session.serve_client(/*seed=*/1001);
    serve::ServeClient bob = session.serve_client(/*seed=*/2002);
    net::NetClient alice_net(alice, host, port, /*session_token=*/0xA11CE);
    net::NetClient bob_net(bob, host, port, /*session_token=*/0xB0B);
    std::printf("connected to %s:%d (key bundle %.1f MB each)\n",
                host.c_str(), port,
                static_cast<double>(alice.key_bundle().size()) / 1e6);

    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const int rounds = 2;
    int agree = 0, total = 0;
    for (int round = 0; round < rounds; ++round) {
        std::vector<double> image_a(784), image_b(784);
        for (double& x : image_a) x = dist(rng);
        for (double& x : image_b) x = dist(rng);
        const std::vector<double> want_a = session.run(image_a).output;
        const std::vector<double> want_b = session.run(image_b).output;
        const std::vector<double> got_a = alice_net.infer(image_a);
        const std::vector<double> got_b = bob_net.infer(image_b);
        auto report = [&](const char* who, const std::vector<double>& got,
                          const std::vector<double>& want) {
            double err = 0.0;
            for (std::size_t i = 0; i < want.size(); ++i) {
                err = std::max(err, std::abs(got[i] - want[i]));
            }
            agree += argmax(got) == argmax(want) ? 1 : 0;
            ++total;
            std::printf("  %s: served argmax %zu, direct argmax %zu, "
                        "max err %.2e\n",
                        who, argmax(got), argmax(want), err);
        };
        std::printf("round %d (over TCP):\n", round);
        report("alice", got_a, want_a);
        report("bob  ", got_b, want_b);
    }

    const net::RetryStats& rs = alice_net.retry_stats();
    std::printf("\nalice retry stats: %llu connects, %llu reconnects, "
                "%llu retries, %llu reregisters\n",
                static_cast<unsigned long long>(rs.connects),
                static_cast<unsigned long long>(rs.reconnects),
                static_cast<unsigned long long>(rs.retries),
                static_cast<unsigned long long>(rs.reregisters));
    std::printf("argmax agreement with direct execution: %d/%d\n", agree,
                total);

    // The peer's scrape surface (router.* series when the peer is a
    // router, serve.* + net.* when it is a shard) — the CI multi-process
    // smoke greps this.
    std::printf("\n--- peer metrics ---\n%s",
                alice_net.fetch_metrics().c_str());
    alice_net.close();
    bob_net.close();
    return agree == total ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string connect;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--connect" && i + 1 < argc) {
            connect = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: serve_mnist [--connect host:port]\n");
            return 2;
        }
    }

    const nn::Network net = nn::make_model("mlp");
    std::printf("MLP: %.2fM parameters\n", net.param_count() / 1e6);

    // One Session drives the whole pipeline: functional CKKS parameters
    // sized for the 784-dim input (NOT secure; see DESIGN.md on parameter
    // substitution - 2^12 keeps the smoke run CI-friendly), compile, the
    // in-process reference executor, the server, and both clients.
    Session session =
        Session::with_params(ckks::CkksParams::network(u64(1) << 12, 8),
                             /*l_eff=*/6);
    const core::CompiledNetwork& compiled = session.compile(net);
    std::printf("compiled in %.2f s: %llu rotations, depth %d, "
                "%llu bootstraps\n",
                compiled.compile_seconds,
                static_cast<unsigned long long>(compiled.total_rotations),
                compiled.activation_depth,
                static_cast<unsigned long long>(compiled.num_bootstraps));

    if (!connect.empty()) {
        std::string host;
        int port = 0;
        net::parse_host_port(connect, host, port);
        return run_connected(session, host, port);
    }

    serve::ServeOptions sopts;
    sopts.max_inflight = 2;
    sopts.queue_capacity = 8;
    // The server pool shares the session's key-independent PreparedProgram
    // with the session's own (ground-truth) executor.
    auto server = session.serve(sopts);
    std::printf("server: %d workers, queue capacity %d\n",
                server->max_inflight(), server->queue_capacity());

    // Two clients with independent secrets (different seeds).
    serve::ServeClient alice = session.serve_client(/*seed=*/1001);
    serve::ServeClient bob = session.serve_client(/*seed=*/2002);
    const ckks::serial::Bytes alice_bundle = alice.key_bundle();
    const ckks::serial::Bytes bob_bundle = bob.key_bundle();
    alice.set_session_id(server->register_session(alice_bundle));
    bob.set_session_id(server->register_session(bob_bundle));
    std::printf("sessions: alice=%llu bob=%llu "
                "(key bundle %.1f MB each)\n",
                static_cast<unsigned long long>(alice.session_id()),
                static_cast<unsigned long long>(bob.session_id()),
                static_cast<double>(alice_bundle.size()) / 1e6);

    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const int rounds = 2;
    int agree = 0, total = 0;
    for (int round = 0; round < rounds; ++round) {
        std::vector<double> image_a(784), image_b(784);
        for (double& x : image_a) x = dist(rng);
        for (double& x : image_b) x = dist(rng);

        // Reference outputs (same program, in-process, session-keyed).
        const std::vector<double> want_a = session.run(image_a).output;
        const std::vector<double> want_b = session.run(image_b).output;

        // Both sessions in flight concurrently.
        const ckks::serial::Bytes req_a = alice.make_request(image_a);
        const ckks::serial::Bytes req_b = bob.make_request(image_b);
        std::printf("round %d: request %.1f KB each\n", round,
                    static_cast<double>(req_a.size()) / 1e3);
        auto fut_a = server->submit(req_a);
        auto fut_b = server->submit(req_b);
        const serve::ServeReply rep_a = fut_a.get();
        const serve::ServeReply rep_b = fut_b.get();

        const std::vector<double> got_a =
            alice.decrypt_response(rep_a.response);
        const std::vector<double> got_b =
            bob.decrypt_response(rep_b.response);

        auto argmax = [](const std::vector<double>& v) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < v.size(); ++i) {
                if (v[i] > v[best]) best = i;
            }
            return best;
        };
        auto report = [&](const char* who, const serve::ServeReply& rep,
                          const std::vector<double>& got,
                          const std::vector<double>& want) {
            double err = 0.0;
            for (std::size_t i = 0; i < want.size(); ++i) {
                err = std::max(err, std::abs(got[i] - want[i]));
            }
            const bool same = argmax(got) == argmax(want);
            agree += same ? 1 : 0;
            ++total;
            std::printf("  %s: served argmax %zu, direct argmax %zu, "
                        "max err %.2e, queue %.1f ms, exec %.2f s, "
                        "%llu rotations\n",
                        who, argmax(got), argmax(want), err,
                        rep.stats.queue_wait_s * 1e3, rep.stats.execute_s,
                        static_cast<unsigned long long>(
                            rep.stats.rotations));
        };
        report("alice", rep_a, got_a, want_a);
        report("bob  ", rep_b, got_b, want_b);
    }

    const serve::ServerStats stats = server->stats();
    std::printf("\nserver stats: %llu completed, %llu failed, "
                "peak inflight %llu, mean queue wait %.1f ms, "
                "mean exec %.2f s\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.peak_inflight),
                1e3 * stats.total_queue_wait_s /
                    static_cast<double>(std::max<u64>(stats.completed, 1)),
                stats.total_execute_s /
                    static_cast<double>(std::max<u64>(stats.completed, 1)));
    std::printf("argmax agreement with direct execution: %d/%d\n", agree,
                total);

    // The scrape surface, printed last so `ORION_TRACE=... ./serve_mnist`
    // leaves both a trace file and a parseable /metrics dump behind (the
    // CI telemetry smoke step greps this).
    std::printf("\n--- metrics ---\n%s", server->metrics_text().c_str());
    return agree == total ? 0 : 1;
}
