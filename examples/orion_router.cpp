/**
 * @file
 * The sharded serving front-end as its own process: clients connect here
 * exactly as they would to a single orion_served shard; sessions are
 * rendezvous-hashed across the backends, and a dead backend's sessions
 * fail over to the survivors (see DESIGN.md "Networking & sharding").
 *
 *   ./orion_router --port 7100 --backend 127.0.0.1:7000 \
 *                  --backend 127.0.0.1:7001
 *
 * --port 0 binds an ephemeral port, announced as "listening on port N".
 * Backends may come up after the router: the health loop keeps dialing.
 * SIGINT / SIGTERM shut down cleanly and print router.* + net.* metrics.
 */

#include <csignal>
#include <cstdio>

#include "src/net/net.h"

using namespace orion;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
on_signal(int)
{
    g_stop = 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    int port = 0;
    std::vector<std::string> backends;
    net::RouterOptions ropts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = std::atoi(next("--port"));
        } else if (arg == "--backend") {
            backends.emplace_back(next("--backend"));
        } else {
            std::fprintf(stderr,
                         "usage: orion_router [--port N] "
                         "--backend host:port [--backend host:port ...]\n");
            return 2;
        }
    }
    if (backends.empty()) {
        std::fprintf(stderr, "orion_router: at least one --backend "
                             "host:port is required\n");
        return 2;
    }

    net::Router router(backends, net::Listener(port), ropts);
    std::printf("listening on port %d (%zu backends)\n", router.port(),
                backends.size());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!g_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::printf("shutting down (%zu sessions, %zu/%zu shards alive)\n",
                router.session_count(), router.alive_shards(),
                backends.size());
    router.stop();
    std::printf("\n--- metrics ---\n%s", router.metrics_text().c_str());
    return 0;
}
