/**
 * @file
 * ResNet-20 on CIFAR-10-sized inputs: the FHE community's standard
 * benchmark (Table 2/4 of the paper). A simulation-only orion::Session
 * compiles the full network (single-shot multiplexed packing + automatic
 * bootstrap placement) at paper-scale slots, prints the level-management
 * policy for the first residual block, and validates the functional FHE
 * execution against the cleartext network.
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"

using namespace orion;

int
main(int argc, char** argv)
{
    const bool silu = argc > 1 && std::string(argv[1]) == "--silu";
    const nn::Network net =
        nn::make_model(silu ? "resnet20-silu" : "resnet20-relu");
    std::printf("%s: %.2fM params, %.1fM multiplies\n",
                net.network_name().c_str(), net.param_count() / 1e6,
                net.flop_count() / 1e6);

    // Paper scale: N = 2^16 -> 2^15 slots, l_eff 10 (the session default).
    Session session = Session::simulation();
    core::CompileOptions opt;
    opt.structural_only = true;
    opt.calibration_samples = 2;
    const core::CompiledNetwork& cn = session.compile(net, opt);
    std::printf("compiled in %.1f s (placement %.2f s)\n",
                cn.compile_seconds, cn.placement_seconds);
    std::printf("rotations %llu | activation depth %d | bootstraps %llu | "
                "modeled latency %.0f s\n",
                static_cast<unsigned long long>(cn.total_rotations),
                cn.activation_depth,
                static_cast<unsigned long long>(cn.num_bootstraps),
                cn.modeled_latency);
    std::printf("(paper, %s: 836 rots, depth %s, %s boots, %s s)\n",
                silu ? "SiLU" : "ReLU", silu ? "154" : "287",
                silu ? "19" : "37", silu ? "301" : "618");

    std::printf("\nlevel policy (first 14 units):\n");
    int shown = 0;
    for (const core::UnitDecision& d : cn.placement.decisions) {
        if (shown++ >= 14) break;
        std::printf("  %-12s level %2d%s\n", d.name.c_str(), d.exec_level,
                    d.bootstrap_before ? "  [bootstrap]" : "");
    }

    // Functional FHE inference vs cleartext.
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> image(3 * 32 * 32);
    for (double& x : image) x = dist(rng);

    const core::ExecutionResult r = session.simulate(image);
    const std::vector<double> clear = net.forward(image);
    double mean_err = 0;
    std::size_t ic = 0, ie = 0;
    for (std::size_t i = 0; i < clear.size(); ++i) {
        mean_err += std::abs(r.output[i] - clear[i]);
        if (clear[i] > clear[ic]) ic = i;
        if (r.output[i] > r.output[ie]) ie = i;
    }
    mean_err /= static_cast<double>(clear.size());
    std::printf("\nFHE output precision: %.1f bits (paper: %s b); "
                "top-1 %s; %llu bootstraps executed\n",
                -std::log2(mean_err), silu ? "13.6" : "4.8",
                ic == ie ? "matches cleartext" : "DIFFERS",
                static_cast<unsigned long long>(r.bootstraps));
    return 0;
}
