/**
 * @file
 * A standalone serving shard: one InferenceServer behind a net::
 * ServeEndpoint TCP listener, run as its own process. Pair with
 * orion_router to shard sessions across several of these, or point
 * `serve_mnist --connect host:port` straight at one.
 *
 *   ./orion_served --port 7000 [--model mlp] [--inflight 2] [--queue 8]
 *
 * --port 0 binds an ephemeral port. The bound port is announced on stdout
 * as "listening on port N" (flushed) so scripts can scrape it. SIGINT /
 * SIGTERM shut the endpoint down cleanly and print the /metrics-style
 * exposition before exit.
 *
 * Parameters match serve_mnist (CkksParams::network(2^12, 8), l_eff 6):
 * both sides compile the same model deterministically, so a client's key
 * bundle is compatible with any shard started with the same flags.
 */

#include <csignal>
#include <cstdio>
#include <cstring>

#include "src/core/orion.h"
#include "src/net/net.h"

using namespace orion;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
on_signal(int)
{
    g_stop = 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    int port = 0;
    std::string model = "mlp";
    serve::ServeOptions sopts;
    sopts.max_inflight = 2;
    sopts.queue_capacity = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = std::atoi(next("--port"));
        } else if (arg == "--model") {
            model = next("--model");
        } else if (arg == "--inflight") {
            sopts.max_inflight = std::atoi(next("--inflight"));
        } else if (arg == "--queue") {
            sopts.queue_capacity = std::atoi(next("--queue"));
        } else {
            std::fprintf(stderr,
                         "usage: orion_served [--port N] [--model NAME] "
                         "[--inflight N] [--queue N]\n");
            return 2;
        }
    }

    const nn::Network net = nn::make_model(model);
    Session session =
        Session::with_params(ckks::CkksParams::network(u64(1) << 12, 8),
                             /*l_eff=*/6);
    const core::CompiledNetwork& compiled = session.compile(net);
    std::printf("compiled %s in %.2f s: %llu rotations, depth %d\n",
                model.c_str(), compiled.compile_seconds,
                static_cast<unsigned long long>(compiled.total_rotations),
                compiled.activation_depth);

    auto server = session.serve(sopts);
    net::ServeEndpoint endpoint(*server, net::Listener(port));
    std::printf("listening on port %d\n", endpoint.port());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!g_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::printf("shutting down (%zu sessions, %zu open conns)\n",
                server->session_count(), endpoint.open_conns());
    endpoint.stop();
    std::printf("\n--- metrics ---\n%s", endpoint.metrics_text().c_str());
    return 0;
}
