/**
 * @file
 * MNIST MLP under real FHE: the paper's smallest Table 2 row, run
 * end-to-end under RNS-CKKS encryption on this machine and validated
 * against the cleartext network over a batch of inputs (the paper's
 * validation methodology, Section 7). The whole pipeline - context,
 * keys, compile, execute - is driven through one orion::Session.
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"

using namespace orion;

int
main()
{
    const nn::Network net = nn::make_model("mlp");
    std::printf("MLP: %.2fM parameters (paper: 0.12M)\n",
                net.param_count() / 1e6);

    // Functional CKKS parameters sized for the 784-dim input (NOT secure;
    // see DESIGN.md on parameter substitution).
    Session session =
        Session::with_params(ckks::CkksParams::network(u64(1) << 13, 8),
                             /*l_eff=*/6);
    const core::CompiledNetwork& compiled = session.compile(net);
    std::printf("compiled in %.2f s: %llu rotations, depth %d, "
                "%llu bootstraps (paper: 70 rots, depth 5, 0 boots)\n",
                compiled.compile_seconds,
                static_cast<unsigned long long>(compiled.total_rotations),
                compiled.activation_depth,
                static_cast<unsigned long long>(compiled.num_bootstraps));
    std::printf("rotation keys: %.1f MB\n",
                static_cast<double>(session.executor().galois_key_bytes()) /
                    1e6);

    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const int batch = 5;
    int top1 = 0;
    double total_time = 0.0;
    double worst_err = 0.0;
    for (int b = 0; b < batch; ++b) {
        std::vector<double> image(784);
        for (double& x : image) x = dist(rng);
        const std::vector<double> clear = net.forward(image);
        const core::ExecutionResult r = session.run(image);
        total_time += r.wall_seconds;

        std::size_t ic = 0, ie = 0;
        double err = 0;
        for (std::size_t i = 0; i < clear.size(); ++i) {
            if (clear[i] > clear[ic]) ic = i;
            if (r.output[i] > r.output[ie]) ie = i;
            err = std::max(err, std::abs(r.output[i] - clear[i]));
        }
        worst_err = std::max(worst_err, err);
        if (ic == ie) ++top1;
        std::printf("  sample %d: encrypted argmax %zu, cleartext %zu, "
                    "max err %.2e, %.2f s\n",
                    b, ie, ic, err, r.wall_seconds);
    }
    std::printf("\ntop-1 agreement: %d/%d, worst error %.2e "
                "(%.1f bits), mean latency %.2f s\n"
                "(paper: 98.03%% FHE accuracy matching cleartext, 4.6 bits, "
                "0.29 s on Xeon 8581C)\n",
                top1, batch, worst_err, -std::log2(worst_err),
                total_time / batch);
    return 0;
}
