/**
 * @file
 * The first fully-encrypted serving path with NO secret-key oracle: a
 * micro MLP compiled one level short of its depth, so placement must
 * insert a bootstrap, served end-to-end through the wire path
 *
 *   encrypt -> serialize -> submit -> [CoeffToSlot -> EvalMod ->
 *   SlotToCoeff under the client's Galois/relin keys] -> serialize ->
 *   decrypt
 *
 * and validated by argmax equality against cleartext execution. Exits
 * nonzero on any mismatch (CI smoke).
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"
#include "src/serve/serve.h"

using namespace orion;

int
main()
{
    // One effective level fewer than the micro MLP's depth: the compiler
    // is forced to bootstrap, and the server must run the real circuit.
    const int l_eff = 2;
    Session session =
        Session::with_params(ckks::CkksParams::bootstrap_toy(l_eff), l_eff);
    const nn::Network net = nn::make_model("micro");
    const core::CompiledNetwork& compiled = session.compile(net);
    std::printf("compiled micro MLP at l_eff %d: %llu bootstraps, "
                "depth %d\n",
                l_eff,
                static_cast<unsigned long long>(compiled.num_bootstraps),
                compiled.total_mult_depth);
    if (compiled.num_bootstraps == 0) {
        std::fprintf(stderr, "FAIL: expected a forced bootstrap\n");
        return 1;
    }

    serve::ServeOptions sopts;
    sopts.max_inflight = 1;
    sopts.queue_capacity = 4;
    auto server = session.serve(sopts);

    serve::ServeClient client = session.serve_client(/*seed=*/4242);
    const ckks::serial::Bytes bundle = client.key_bundle();
    client.set_session_id(server->register_session(bundle));
    std::printf("session %llu registered (bundle %.1f MB incl. "
                "bootstrap + conjugation keys, level-pruned)\n",
                static_cast<unsigned long long>(client.session_id()),
                static_cast<double>(bundle.size()) / 1e6);

    std::mt19937_64 rng(9);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    int agree = 0;
    const int rounds = 2;
    for (int round = 0; round < rounds; ++round) {
        std::vector<double> x(64);
        for (double& v : x) v = dist(rng);
        const std::vector<double> clear = net.forward(x);

        auto fut = server->submit(client.make_request(x));
        const serve::ServeReply reply = fut.get();
        const std::vector<double> got =
            client.decrypt_response(reply.response);

        auto argmax = [](const std::vector<double>& v) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < v.size(); ++i) {
                if (v[i] > v[best]) best = i;
            }
            return best;
        };
        double err = 0.0;
        for (std::size_t i = 0; i < clear.size(); ++i) {
            err = std::max(err, std::abs(got[i] - clear[i]));
        }
        const bool same = argmax(got) == argmax(clear);
        agree += same ? 1 : 0;
        std::printf("round %d: served argmax %zu, cleartext argmax %zu, "
                    "max err %.2e, %llu bootstraps, exec %.2f s\n",
                    round, argmax(got), argmax(clear), err,
                    static_cast<unsigned long long>(reply.stats.bootstraps),
                    reply.stats.execute_s);
    }
    std::printf("argmax agreement with cleartext: %d/%d\n", agree, rounds);
    return agree == rounds ? 0 : 1;
}
