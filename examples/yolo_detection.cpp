/**
 * @file
 * Section 8.6 case study as a runnable example: YOLO-v1 (ResNet-34
 * backbone, 139M parameters) object detection on a 448x448x3 image under
 * the functional FHE backend. Prints the predicted boxes with class
 * confidences, mirroring Figure 8's annotated outputs.
 *
 * Note: compiling the 139M-parameter detector takes a few minutes of
 * single-core time (the paper's compile phase is comparable).
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"

using namespace orion;

int
main()
{
    const nn::Network net = nn::make_yolo_v1();
    std::printf("YOLO-v1 (ResNet-34 backbone): %.0fM parameters on "
                "448x448x3 input\n",
                net.param_count() / 1e6);
    std::printf("the paper calls this the largest FHE inference to date "
                "(Section 8.6)\n\n");
    std::fflush(stdout);

    // Paper-scale simulation-only session (2^15 slots, l_eff 10).
    Session session = Session::simulation();
    core::CompileOptions opt;
    opt.structural_only = true;
    opt.calibration_samples = 1;
    const core::CompiledNetwork& cn = session.compile(net, opt);
    std::printf("compiled: %llu rotations, %llu bootstraps, modeled "
                "latency %.1f h single-thread (paper: 17.5 h)\n",
                static_cast<unsigned long long>(cn.total_rotations),
                static_cast<unsigned long long>(cn.num_bootstraps),
                cn.modeled_latency / 3600.0);
    std::fflush(stdout);

    // A synthetic "image" (datasets are unavailable offline; DESIGN.md).
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> image(3 * 448 * 448);
    for (double& x : image) x = dist(rng);

    const core::ExecutionResult r = session.simulate(image);

    // Decode the 7x7x30 tensor: per cell 20 class scores then 2 boxes.
    std::printf("\ntop detections (class confidence = box conf x class "
                "score):\n");
    struct Det {
        double conf;
        int cy, cx, cls;
    };
    std::vector<Det> dets;
    for (int cy = 0; cy < 7; ++cy) {
        for (int cx = 0; cx < 7; ++cx) {
            const std::size_t base =
                (static_cast<std::size_t>(cy) * 7 + cx) * 30;
            int cls = 0;
            for (int c = 1; c < 20; ++c) {
                if (r.output[base + c] > r.output[base + cls]) cls = c;
            }
            for (int b = 0; b < 2; ++b) {
                const double conf =
                    r.output[base + 20 + 5 * static_cast<std::size_t>(b) + 4] *
                    r.output[base + cls];
                dets.push_back({conf, cy, cx, cls});
            }
        }
    }
    std::sort(dets.begin(), dets.end(),
              [](const Det& a, const Det& b) { return a.conf > b.conf; });
    for (int i = 0; i < 4; ++i) {
        std::printf("  cell (%d,%d): class %2d, confidence %.2f\n",
                    dets[static_cast<std::size_t>(i)].cy,
                    dets[static_cast<std::size_t>(i)].cx,
                    dets[static_cast<std::size_t>(i)].cls,
                    dets[static_cast<std::size_t>(i)].conf);
    }

    const std::vector<double> clear = net.forward(image);
    double mean_err = 0;
    for (std::size_t i = 0; i < clear.size(); ++i) {
        mean_err += std::abs(r.output[i] - clear[i]);
    }
    mean_err /= static_cast<double>(clear.size());
    std::printf("\noutput precision vs cleartext: %.1f bits over the "
                "7x7x30 tensor\n",
                -std::log2(mean_err));
    return 0;
}
