/**
 * @file
 * Quickstart: define a small network with the orion::nn API (the C++
 * analogue of Listing 1), compile it, and run the same program three ways:
 * cleartext, functional simulation, and real RNS-CKKS encryption.
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"

using namespace orion;

int
main()
{
    // 1. Define a network (mirrors the PyTorch-style API of Listing 1).
    std::mt19937_64 rng(1);
    std::normal_distribution<double> dist(0.0, 0.3);
    auto weights = [&](u64 n) {
        std::vector<double> w(n);
        for (double& x : w) x = dist(rng);
        return w;
    };

    nn::Network net("quickstart");
    int id = net.add_input(1, 8, 8);
    lin::Conv2dSpec conv;
    conv.in_channels = 1;
    conv.out_channels = 4;
    conv.kernel_h = conv.kernel_w = 3;
    conv.stride = 2;  // single-shot multiplexed: still one level
    conv.pad = 1;
    id = net.add_conv2d(id, conv, weights(conv.weight_count()), weights(4));
    id = net.add_activation(id, nn::ActivationSpec::square());
    id = net.add_flatten(id);
    id = net.add_linear(id, 10, weights(10 * 4 * 4 * 4), weights(10));
    net.set_output(id);
    std::printf("network: %llu parameters, %llu multiplies\n",
                static_cast<unsigned long long>(net.param_count()),
                static_cast<unsigned long long>(net.flop_count()));

    // 2. A CKKS context (toy parameters - NOT secure, fast for demo).
    ckks::CkksParams params = ckks::CkksParams::toy();
    ckks::Context ctx(params);

    // 3. Compile: range estimation, packing, level + bootstrap placement.
    core::CompileOptions opt;
    opt.slots = ctx.slot_count();
    opt.l_eff = 4;
    opt.cost = core::CostModel::for_params(ctx.degree(), params.digit_size,
                                           params.digit_size, 2);
    const core::CompiledNetwork compiled = core::compile(net, opt);
    std::printf("compiled: %zu instructions, %llu rotations, "
                "%llu bootstraps\n",
                compiled.program.size(),
                static_cast<unsigned long long>(compiled.total_rotations),
                static_cast<unsigned long long>(compiled.num_bootstraps));

    // The level-management policy found by the placement DAG solver
    // (the machinery of Figure 6).
    std::printf("\nlevel policy:\n");
    for (const core::UnitDecision& d : compiled.placement.decisions) {
        std::printf("  %-12s at level %d%s\n", d.name.c_str(), d.exec_level,
                    d.bootstrap_before ? "  [bootstrap before]" : "");
    }

    // 4. Run it three ways.
    std::mt19937_64 rng2(2);
    std::uniform_real_distribution<double> in_dist(-1.0, 1.0);
    std::vector<double> image(64);
    for (double& x : image) x = in_dist(rng2);

    const std::vector<double> clear = net.forward(image);
    core::SimExecutor sim(compiled, 0.0);
    const core::ExecutionResult sim_result = sim.run(image);
    core::CkksExecutor fhe(compiled, ctx);
    const core::ExecutionResult fhe_result = fhe.run(image);

    std::printf("\n%-10s %12s %12s %12s\n", "logit", "cleartext",
                "simulated", "encrypted");
    for (std::size_t i = 0; i < clear.size(); ++i) {
        std::printf("%-10zu %12.6f %12.6f %12.6f\n", i, clear[i],
                    sim_result.output[i], fhe_result.output[i]);
    }
    double err = 0;
    for (std::size_t i = 0; i < clear.size(); ++i) {
        err = std::max(err, std::abs(fhe_result.output[i] - clear[i]));
    }
    std::printf("\nencrypted inference: %.2f s wall, max error %.2e, "
                "%llu rotations performed\n",
                fhe_result.wall_seconds, err,
                static_cast<unsigned long long>(fhe_result.rotations));
    return 0;
}
