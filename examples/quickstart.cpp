/**
 * @file
 * Quickstart: define a small network with the PyTorch-style orion::nn
 * module frontend (the C++ analogue of Listing 1), compile it inside an
 * orion::Session, and run the same program three ways: cleartext,
 * functional simulation, and real RNS-CKKS encryption.
 */

#include <cstdio>
#include <random>

#include "src/core/orion.h"

using namespace orion;

int
main()
{
    // 1. Define the network (Listing 1 style: no layer ids, no flat weight
    //    vectors; unset weights are He-initialized by the session's seed).
    auto net = nn::Sequential({
        nn::Conv2d(1, 4, 3, {.stride = 2, .pad = 1}),  // still one level
        nn::Square(),
        nn::Flatten(),
        nn::Linear(64, 10),
    });

    // 2. A session owns the CKKS context + keys (toy params - NOT secure)
    //    and compiles: range estimation, packing, level + bootstrap
    //    placement (Section 6).
    Session session = Session::toy();
    const core::CompiledNetwork& compiled =
        session.compile(*net, 1, 8, 8, "quickstart");
    std::printf("network: %llu parameters, %llu multiplies\n",
                static_cast<unsigned long long>(
                    session.network().param_count()),
                static_cast<unsigned long long>(
                    session.network().flop_count()));
    std::printf("compiled: %zu instructions, %llu rotations, "
                "%llu bootstraps\n",
                compiled.program.size(),
                static_cast<unsigned long long>(compiled.total_rotations),
                static_cast<unsigned long long>(compiled.num_bootstraps));

    // The level-management policy found by the placement DAG solver
    // (the machinery of Figure 6).
    std::printf("\nlevel policy:\n");
    for (const core::UnitDecision& d : compiled.placement.decisions) {
        std::printf("  %-12s at level %d%s\n", d.name.c_str(), d.exec_level,
                    d.bootstrap_before ? "  [bootstrap before]" : "");
    }

    // 3. Run it three ways.
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<double> in_dist(-1.0, 1.0);
    std::vector<double> image(64);
    for (double& x : image) x = in_dist(rng);

    const std::vector<double> clear = session.network().forward(image);
    const core::ExecutionResult sim_result = session.simulate(image);
    const core::ExecutionResult fhe_result = session.run(image);

    std::printf("\n%-10s %12s %12s %12s\n", "logit", "cleartext",
                "simulated", "encrypted");
    for (std::size_t i = 0; i < clear.size(); ++i) {
        std::printf("%-10zu %12.6f %12.6f %12.6f\n", i, clear[i],
                    sim_result.output[i], fhe_result.output[i]);
    }
    double err = 0;
    for (std::size_t i = 0; i < clear.size(); ++i) {
        err = std::max(err, std::abs(fhe_result.output[i] - clear[i]));
    }
    std::printf("\nencrypted inference: %.2f s wall, max error %.2e, "
                "%llu rotations performed\n",
                fhe_result.wall_seconds, err,
                static_cast<unsigned long long>(fhe_result.rotations));
    return 0;
}
